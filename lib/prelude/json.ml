type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec print_into buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    (* JSON has no NaN/Infinity; clamp to null like most encoders. *)
    if Float.is_nan f || Float.abs f = Float.infinity then
      Buffer.add_string buf "null"
    else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | String s -> escape_into buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        print_into buf x)
      xs;
    Buffer.add_char buf ']'
  | Assoc fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_into buf k;
        Buffer.add_char buf ':';
        print_into buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  print_into buf j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

exception Fail of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' -> (
          if !pos >= n then fail "unterminated escape"
          else
            let e = s.[!pos] in
            advance ();
            match e with
            | '"' | '\\' | '/' ->
              Buffer.add_char buf e;
              go ()
            | 'n' ->
              Buffer.add_char buf '\n';
              go ()
            | 't' ->
              Buffer.add_char buf '\t';
              go ()
            | 'r' ->
              Buffer.add_char buf '\r';
              go ()
            | 'b' ->
              Buffer.add_char buf '\b';
              go ()
            | 'f' ->
              Buffer.add_char buf '\012';
              go ()
            | 'u' ->
              if !pos + 4 > n then fail "truncated \\u escape"
              else begin
                let hex = String.sub s !pos 4 in
                pos := !pos + 4;
                (* Exactly 4 hex digits: [int_of_string "0x..."] alone
                   would also admit OCaml literal syntax ("1_2a"). *)
                let is_hex = function
                  | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true
                  | _ -> false
                in
                if not (String.for_all is_hex hex) then fail "bad \\u escape";
                match int_of_string_opt ("0x" ^ hex) with
                | None -> fail "bad \\u escape"
                | Some code ->
                  (* Encode the code point as UTF-8 (BMP only; surrogate
                     pairs are passed through as-is, which round-trips our
                     own printer). *)
                  if code < 0x80 then Buffer.add_char buf (Char.chr code)
                  else if code < 0x800 then begin
                    Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
                    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
                  end
                  else begin
                    Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
                    Buffer.add_char buf
                      (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
                    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
                  end;
                  go ()
              end
            | _ -> fail "bad escape")
        | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    (* Enforce the JSON number grammar — optional minus, "0" or a
       nonzero-led digit run, optional ".digits", optional
       "[eE][+-]digits" — before handing the text to OCaml's lenient
       converters.  Rejects a leading '+', leading zeros ("05") and
       bare trailing parts ("1.", "1e") that
       [int_of_string]/[float_of_string] accept. *)
    let grammatical =
      let len = String.length text in
      let i = ref 0 in
      let digit c = c >= '0' && c <= '9' in
      let digits () =
        if !i < len && digit text.[!i] then begin
          while !i < len && digit text.[!i] do incr i done;
          true
        end
        else false
      in
      let ok = ref true in
      if !i < len && text.[!i] = '-' then incr i;
      (if !i < len && text.[!i] = '0' then incr i
       else if not (digits ()) then ok := false);
      if !ok && !i < len && text.[!i] = '.' then begin
        incr i;
        if not (digits ()) then ok := false
      end;
      if !ok && !i < len && (text.[!i] = 'e' || text.[!i] = 'E') then begin
        incr i;
        if !i < len && (text.[!i] = '+' || text.[!i] = '-') then incr i;
        if not (digits ()) then ok := false
      end;
      !ok && !i = len
    in
    if not grammatical then fail "bad number";
    let floatish =
      String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text
    in
    if floatish then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Assoc []
      end
      else begin
        let fields = ref [] in
        let rec fields_loop () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields_loop ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        fields_loop ();
        Assoc (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [] in
        let rec items_loop () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items_loop ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        items_loop ();
        List (List.rev !items)
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing input";
    v
  with
  | v -> Ok v
  | exception Fail (p, msg) ->
    Error (Printf.sprintf "JSON parse error at offset %d: %s" p msg)

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)

let member key = function Assoc fields -> List.assoc_opt key fields | _ -> None
let to_int_opt = function Int i -> Some i | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
let to_bool_opt = function Bool b -> Some b | _ -> None
let to_list_opt = function List xs -> Some xs | _ -> None
