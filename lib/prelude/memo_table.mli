(** Bounded open-addressing map from fixed-width integer keys to
    fixed-width integer values, built for the optimal search's
    state-dominance transposition table.

    Everything lives in four flat [int array]s; no allocation happens on
    lookup, so the search hot path produces no GC pressure.  The backing
    arrays start at [initial] entries (default: the full capacity) and
    double transparently on store as the table fills, up to the capacity
    bound — tiny searches that touch a handful of states never pay for a
    full-size allocation.  Capacity is bounded: once the bound is
    reached, when the probe window of a new entry is full, the entry at
    the {e deepest} recorded search depth is evicted (a shallow entry
    guards a larger subtree, so it is worth more), and an entry deeper
    than every incumbent is dropped instead of stored.

    Keys are compared for real equality (word by word), never only by
    hash.  Values are plain int vectors; {!dominates} is the
    componentwise-[<=] test the dominance pruning needs. *)

type t

(** [create ~capacity ~key_words ~value_words] — an empty table holding
    at most [capacity] entries (rounded up to a power of two) of
    [key_words]-word keys and [value_words]-word values, fully allocated
    up front (no growth).  Raises [Invalid_argument] when any argument is
    [< 1]. *)
val create : capacity:int -> key_words:int -> value_words:int -> t

(** [create_growing ~initial ~capacity ...] — like {!create}, but the
    backing arrays start at [initial] entries (rounded up to a power of
    two, capped at [capacity]) and double transparently as stores land,
    up to the [capacity] bound.  The search activates its memo mid-run,
    so starting small keeps short searches from paying a full-capacity
    allocate-and-zero. *)
val create_growing :
  initial:int -> capacity:int -> key_words:int -> value_words:int -> t

(** Entry capacity bound (after rounding up to a power of two). *)
val capacity : t -> int

(** Slots currently allocated ([<= capacity]; grows as entries land). *)
val allocated : t -> int

(** Entries currently stored. *)
val entries : t -> int

(** Entries displaced by depth-preferring eviction so far. *)
val evictions : t -> int

(** [find t ~hash key] is the slot holding [key] (length [key_words];
    [hash] must be the caller's hash of it), or [-1] when absent.  Slots
    stay valid until the next [store] or [clear]. *)
val find : t -> hash:int -> int array -> int

(** [dominates t slot value] — is the stored value at [slot]
    componentwise [<=] the candidate [value] (length [value_words])?
    With the search's fingerprint encoding, [true] means the recorded
    visit reached the same scheduled set in an equal-or-better state. *)
val dominates : t -> int -> int array -> bool

(** Search depth recorded with the entry at [slot]. *)
val depth_at : t -> int -> int

(** [store t ~hash ~depth ~key ~value] inserts or replaces the entry for
    [key].  A matching key is overwritten in place; otherwise an empty
    slot in the probe window is used; otherwise, below the capacity
    bound, the table doubles and the store retries; at the bound the
    deepest entry of the window is evicted if it is deeper than [depth].
    Returns [false] when the entry was dropped (window full of shallower
    entries at full capacity).  Raises [Invalid_argument] on a negative
    [depth] or mis-sized arrays. *)
val store : t -> hash:int -> depth:int -> key:int array -> value:int array -> bool

(** Empty the table in place (counters reset too). *)
val clear : t -> unit
