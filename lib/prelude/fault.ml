type site = Solver | Cache_insert | Write_response | Accept

exception Injected of string

let all_sites = [ Solver; Cache_insert; Write_response; Accept ]

let site_to_string = function
  | Solver -> "solver"
  | Cache_insert -> "cache_insert"
  | Write_response -> "write_response"
  | Accept -> "accept"

let site_of_string = function
  | "solver" -> Some Solver
  | "cache_insert" -> Some Cache_insert
  | "write_response" -> Some Write_response
  | "accept" -> Some Accept
  | _ -> None

let index = function
  | Solver -> 0
  | Cache_insert -> 1
  | Write_response -> 2
  | Accept -> 3

let nsites = 4

(* Written only by [arm]/[disarm] (startup / test setup); read by hot
   paths without synchronization.  An armed entry is immutable, so the
   worst a racing reader can see is the old arming — acceptable for a
   knob documented as set-before-traffic. *)
let armings : (float * int) option array = Array.make nsites None
let counters = Array.init nsites (fun _ -> Atomic.make 0)

let armed site = armings.(index site) <> None

let parse spec =
  let parse_one triple =
    match String.split_on_char ':' triple with
    | [ name; prob; seed ] -> (
      match site_of_string (String.trim name) with
      | None ->
        Error
          (Printf.sprintf "unknown fault site %S (sites: %s)" name
             (String.concat ", " (List.map site_to_string all_sites)))
      | Some site -> (
        match float_of_string_opt (String.trim prob) with
        | None -> Error (Printf.sprintf "bad fault probability %S" prob)
        | Some p when not (p >= 0.0 && p <= 1.0) ->
          Error
            (Printf.sprintf "fault probability %g out of range [0, 1]" p)
        | Some p -> (
          match int_of_string_opt (String.trim seed) with
          | None -> Error (Printf.sprintf "bad fault seed %S" seed)
          | Some s -> Ok (site, p, s))))
    | _ ->
      Error
        (Printf.sprintf "bad fault spec %S (want site:prob:seed)" triple)
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | triple :: rest -> (
      match parse_one triple with
      | Ok a -> go (a :: acc) rest
      | Error _ as e -> e)
  in
  let parts =
    List.filter
      (fun s -> String.trim s <> "")
      (String.split_on_char ',' spec)
  in
  go [] parts

let disarm () =
  Array.fill armings 0 nsites None;
  Array.iter (fun c -> Atomic.set c 0) counters

let arm specs =
  disarm ();
  List.iter (fun (site, prob, seed) -> armings.(index site) <- Some (prob, seed)) specs

let arm_spec spec =
  match parse spec with
  | Ok specs ->
    arm specs;
    Ok ()
  | Error _ as e -> e

(* 64-bit FNV-1a over the key, folded into OCaml's 63-bit int. *)
let fnv1a s =
  let h = ref (-3750763034362895579L) (* 0xcbf29ce484222325 *) in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 1099511628211L)
    s;
  Int64.to_int !h land max_int

let fire site ~key =
  match armings.(index site) with
  | None -> false
  | Some (prob, seed) ->
    (* One splitmix64 draw at state [seed XOR fnv1a key]: a pure
       function of (arming, key), so verdicts cannot depend on thread
       interleaving. *)
    let hit = Rng.float (Rng.create (seed lxor fnv1a key)) < prob in
    if hit then Atomic.incr counters.(index site);
    hit

let guard site ~key =
  if fire site ~key then raise (Injected (site_to_string site))

let injected site = Atomic.get counters.(index site)

let total_injected () =
  Array.fold_left (fun acc c -> acc + Atomic.get c) 0 counters
