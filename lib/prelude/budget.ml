(* Combined search budget: a call count (the paper's lambda), an optional
   wall-clock deadline, and an optional cross-domain cancellation token.

   Determinism contract: when no deadline is set the clock is NEVER read,
   so call-count-only budgets behave bit-for-bit identically run to run
   and at any domain count.  When a deadline is set, the clock is read at
   creation and then only once every [check_stride] spends, keeping the
   per-call overhead of deadline checking to an integer mask test. *)

(* A token optionally chains to a parent: [derive]d tokens trip when
   either their own flag or any ancestor's is set, so a sub-search can be
   cancelled on its own (portfolio loser cut-off) while still honouring a
   caller-wide token.  The chain is almost always empty or one link, so
   [is_cancelled] stays one or two atomic loads. *)
type token = { flag : bool Atomic.t; parent : token option }

let token () = { flag = Atomic.make false; parent = None }
let derive parent = { flag = Atomic.make false; parent = Some parent }
let cancel t = Atomic.set t.flag true

let rec is_cancelled t =
  Atomic.get t.flag
  || (match t.parent with Some p -> is_cancelled p | None -> false)

type status = Complete | Curtailed_lambda | Curtailed_deadline | Cancelled

let status_to_string = function
  | Complete -> "Complete"
  | Curtailed_lambda -> "Curtailed_lambda"
  | Curtailed_deadline -> "Curtailed_deadline"
  | Cancelled -> "Cancelled"

let is_complete = function Complete -> true | _ -> false

type limits = {
  calls : int option;
  deadline_s : float option;
  cancel : token option;
}

let unlimited = { calls = None; deadline_s = None; cancel = None }

(* Overridable so a harness with a true monotonic clock (e.g. bechamel's)
   can install it; the default is wall time, which is monotonic enough for
   coarse search deadlines.  Install before any budgets are started. *)
let clock = ref Unix.gettimeofday

let set_clock f = clock := f

(* Deadline re-checked every this many spends; must be a power of two. *)
let check_stride = 32

(* A shared call pool: one lambda split across concurrent searchers.
   Workers reserve slices with a single fetch-and-add each; reserved
   slices are disjoint by construction, so the sum of calls actually
   granted across all attached budgets never exceeds [pool_calls] no
   matter how claims interleave. *)
type pool = { pool_calls : int; pool_next : int Atomic.t }

let pool ~calls = { pool_calls = max 0 calls; pool_next = Atomic.make 0 }

let pool_exhausted p = Atomic.get p.pool_next >= p.pool_calls

let pool_spent p = min (Atomic.get p.pool_next) p.pool_calls

(* Calls reserved per claim: big enough that the atomic is off the hot
   path, small enough that an idle worker strands few calls. *)
let claim_chunk = 64

let claim p k =
  let old = Atomic.fetch_and_add p.pool_next k in
  if old >= p.pool_calls then 0 else min k (p.pool_calls - old)

type t = {
  limits : limits;
  pool : pool option;
  started : float;      (* clock at [start]; 0.0 when no deadline is set *)
  deadline_at : float;  (* absolute expiry; [infinity] when none *)
  mutable spent : int;
  mutable allowance : int;  (* pool calls reserved but not yet spent *)
  mutable stopped : status option;
}

let start ?pool limits =
  let started =
    match limits.deadline_s with Some _ -> !clock () | None -> 0.0
  in
  {
    limits;
    pool;
    started;
    deadline_at =
      (match limits.deadline_s with
       | Some d -> started +. d
       | None -> infinity);
    spent = 0;
    allowance = 0;
    stopped = None;
  }

let spend t =
  t.spent <- t.spent + 1;
  match t.pool with None -> () | Some _ -> t.allowance <- t.allowance - 1

let spent t = t.spent

let exhausted t =
  match t.stopped with
  | Some _ as s -> s
  | None ->
    let s =
      if
        match t.limits.cancel with
        | Some tok -> is_cancelled tok
        | None -> false
      then Some Cancelled
      else if
        match t.limits.calls with Some l -> t.spent >= l | None -> false
      then Some Curtailed_lambda
      else if
        match t.pool with
        | Some p when t.allowance <= 0 ->
          let got = claim p claim_chunk in
          t.allowance <- got;
          got = 0
        | _ -> false
      then Some Curtailed_lambda
      else if
        t.limits.deadline_s <> None
        && t.spent land (check_stride - 1) = 0
        && !clock () >= t.deadline_at
      then Some Curtailed_deadline
      else None
    in
    (match s with Some _ -> t.stopped <- s | None -> ());
    s

(* Post-hoc status: like [exhausted] but with the strided deadline gate
   dropped, so a deadline that passed between two strided clock reads is
   reported as such instead of being misattributed.  Grants no new pool
   allowance (the pool trips only if it is genuinely drained).  Sticky
   like [exhausted]; reads the clock only when a deadline is set. *)
let expiry t =
  match t.stopped with
  | Some _ as s -> s
  | None ->
    let s =
      if
        match t.limits.cancel with
        | Some tok -> is_cancelled tok
        | None -> false
      then Some Cancelled
      else if
        match t.limits.calls with Some l -> t.spent >= l | None -> false
      then Some Curtailed_lambda
      else if
        match t.pool with
        | Some p -> t.allowance <= 0 && pool_exhausted p
        | None -> false
      then Some Curtailed_lambda
      else if t.limits.deadline_s <> None && !clock () >= t.deadline_at then
        Some Curtailed_deadline
      else None
    in
    (match s with Some _ -> t.stopped <- s | None -> ());
    s

let elapsed_s t =
  match t.limits.deadline_s with
  | None -> 0.0
  | Some _ -> !clock () -. t.started
