(* Combined search budget: a call count (the paper's lambda), an optional
   wall-clock deadline, and an optional cross-domain cancellation token.

   Determinism contract: when no deadline is set the clock is NEVER read,
   so call-count-only budgets behave bit-for-bit identically run to run
   and at any domain count.  When a deadline is set, the clock is read at
   creation and then only once every [check_stride] spends, keeping the
   per-call overhead of deadline checking to an integer mask test. *)

type token = bool Atomic.t

let token () = Atomic.make false
let cancel t = Atomic.set t true
let is_cancelled t = Atomic.get t

type status = Complete | Curtailed_lambda | Curtailed_deadline | Cancelled

let status_to_string = function
  | Complete -> "Complete"
  | Curtailed_lambda -> "Curtailed_lambda"
  | Curtailed_deadline -> "Curtailed_deadline"
  | Cancelled -> "Cancelled"

let is_complete = function Complete -> true | _ -> false

type limits = {
  calls : int option;
  deadline_s : float option;
  cancel : token option;
}

let unlimited = { calls = None; deadline_s = None; cancel = None }

(* Overridable so a harness with a true monotonic clock (e.g. bechamel's)
   can install it; the default is wall time, which is monotonic enough for
   coarse search deadlines.  Install before any budgets are started. *)
let clock = ref Unix.gettimeofday

let set_clock f = clock := f

(* Deadline re-checked every this many spends; must be a power of two. *)
let check_stride = 32

type t = {
  limits : limits;
  started : float;      (* clock at [start]; 0.0 when no deadline is set *)
  deadline_at : float;  (* absolute expiry; [infinity] when none *)
  mutable spent : int;
  mutable stopped : status option;
}

let start limits =
  let started =
    match limits.deadline_s with Some _ -> !clock () | None -> 0.0
  in
  {
    limits;
    started;
    deadline_at =
      (match limits.deadline_s with
       | Some d -> started +. d
       | None -> infinity);
    spent = 0;
    stopped = None;
  }

let spend t = t.spent <- t.spent + 1

let spent t = t.spent

let exhausted t =
  match t.stopped with
  | Some _ as s -> s
  | None ->
    let s =
      if
        match t.limits.cancel with
        | Some tok -> Atomic.get tok
        | None -> false
      then Some Cancelled
      else if
        match t.limits.calls with Some l -> t.spent >= l | None -> false
      then Some Curtailed_lambda
      else if
        t.limits.deadline_s <> None
        && t.spent land (check_stride - 1) = 0
        && !clock () >= t.deadline_at
      then Some Curtailed_deadline
      else None
    in
    (match s with Some _ -> t.stopped <- s | None -> ());
    s

let elapsed_s t =
  match t.limits.deadline_s with
  | None -> 0.0
  | Some _ -> !clock () -. t.started
