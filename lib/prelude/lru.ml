(* Hashtbl + doubly-linked recency list; every public operation holds
   [lock], which is what makes the structure domain-safe (the server's
   worker domains share one cache). *)

type 'v node = {
  key : string;
  mutable value : 'v;
  mutable prev : 'v node option; (* toward MRU *)
  mutable next : 'v node option; (* toward LRU *)
}

type 'v t = {
  capacity : int;
  tbl : (string, 'v node) Hashtbl.t;
  mutable mru : 'v node option;
  mutable lru : 'v node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  lock : Mutex.t;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Lru.create: negative capacity";
  {
    capacity;
    tbl = Hashtbl.create (max 16 capacity);
    mru = None;
    lru = None;
    hits = 0;
    misses = 0;
    evictions = 0;
    lock = Mutex.create ();
  }

let capacity t = t.capacity

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let length t = locked t (fun () -> Hashtbl.length t.tbl)

(* Callers below hold the lock. *)
let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.mru <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.lru <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.mru;
  node.prev <- None;
  (match t.mru with Some m -> m.prev <- Some node | None -> t.lru <- Some node);
  t.mru <- Some node

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some node ->
        t.hits <- t.hits + 1;
        unlink t node;
        push_front t node;
        Some node.value
      | None ->
        t.misses <- t.misses + 1;
        None)

let mem t key = locked t (fun () -> Hashtbl.mem t.tbl key)

let put t key v =
  (* Chaos site: an armed [cache_insert] fault makes this insert raise
     before any mutation, modeling a failed/aborted insert.  Callers
     that treat the cache as an optimization (the server does) contain
     the raise and serve without caching. *)
  Fault.guard Fault.Cache_insert ~key;
  if t.capacity > 0 then
    locked t (fun () ->
        (match Hashtbl.find_opt t.tbl key with
        | Some node ->
          node.value <- v;
          unlink t node;
          push_front t node
        | None ->
          let node = { key; value = v; prev = None; next = None } in
          Hashtbl.replace t.tbl key node;
          push_front t node);
        if Hashtbl.length t.tbl > t.capacity then
          match t.lru with
          | Some victim ->
            unlink t victim;
            Hashtbl.remove t.tbl victim.key;
            t.evictions <- t.evictions + 1
          | None -> assert false)

let hits t = locked t (fun () -> t.hits)
let misses t = locked t (fun () -> t.misses)
let evictions t = locked t (fun () -> t.evictions)

let keys_mru t =
  locked t (fun () ->
      let rec go acc = function
        | None -> List.rev acc
        | Some node -> go (node.key :: acc) node.next
      in
      go [] t.mru)

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.tbl;
      t.mru <- None;
      t.lru <- None;
      t.hits <- 0;
      t.misses <- 0;
      t.evictions <- 0)
