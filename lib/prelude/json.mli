(** Minimal JSON tree, printer and parser — just enough for the
    [pipesched_server] line protocol and the bench/fuzz evidence files,
    with no external dependency.

    The printer emits compact single-line JSON (the framing of the line
    protocol) with full string escaping.  The parser is a strict
    recursive-descent reader of standard JSON; numbers without [.], [e]
    or [E] parse as [Int], everything else numeric as [Float].  Numbers
    and [\u] escapes are validated against the JSON grammar before any
    OCaml conversion runs, so OCaml literal leniency (underscores in
    ["\u1_2a"], leading [+] or [0]s) never leaks into the protocol.
    Input after the first value is rejected, so one protocol line is
    exactly one value. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

(** Compact rendering (no newlines — safe to frame one-per-line). *)
val to_string : t -> string

(** [parse s] reads exactly one JSON value (surrounding whitespace
    allowed).  [Error msg] carries a position-annotated message. *)
val parse : string -> (t, string) result

(** {2 Accessors} — each returns [None] on a shape mismatch. *)

(** [member key json] is the field of an [Assoc]. *)
val member : string -> t -> t option

val to_int_opt : t -> int option

(** Accepts both [Int] and [Float]. *)
val to_float_opt : t -> float option

val to_string_opt : t -> string option
val to_bool_opt : t -> bool option
val to_list_opt : t -> t list option
