type t = { words : int array; n : int }

let bits_per_word = 63

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative capacity";
  { words = Array.make ((n + bits_per_word - 1) / bits_per_word + 1) 0; n }

let capacity s = s.n

let check s i =
  if i < 0 || i >= s.n then invalid_arg "Bitset: index out of range"

let mem s i =
  check s i;
  s.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let add s i =
  check s i;
  let w = i / bits_per_word in
  s.words.(w) <- s.words.(w) lor (1 lsl (i mod bits_per_word))

let remove s i =
  check s i;
  let w = i / bits_per_word in
  s.words.(w) <- s.words.(w) land lnot (1 lsl (i mod bits_per_word))

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  go 0 x

let cardinal s = Array.fold_left (fun acc w -> acc + popcount w) 0 s.words

let copy s = { s with words = Array.copy s.words }

let same_capacity s1 s2 =
  if s1.n <> s2.n then invalid_arg "Bitset: capacity mismatch"

let union_into ~into s =
  same_capacity into s;
  for i = 0 to Array.length into.words - 1 do
    into.words.(i) <- into.words.(i) lor s.words.(i)
  done

let inter s1 s2 =
  same_capacity s1 s2;
  let r = create s1.n in
  for i = 0 to Array.length r.words - 1 do
    r.words.(i) <- s1.words.(i) land s2.words.(i)
  done;
  r

let subset s1 s2 =
  same_capacity s1 s2;
  let ok = ref true in
  for i = 0 to Array.length s1.words - 1 do
    if s1.words.(i) land lnot s2.words.(i) <> 0 then ok := false
  done;
  !ok

(* Number of trailing zeros of a one-bit word (binary search). *)
let ntz b =
  let n = ref 0 and x = ref b in
  if !x land 0xFFFFFFFF = 0 then begin n := !n + 32; x := !x lsr 32 end;
  if !x land 0xFFFF = 0 then begin n := !n + 16; x := !x lsr 16 end;
  if !x land 0xFF = 0 then begin n := !n + 8; x := !x lsr 8 end;
  if !x land 0xF = 0 then begin n := !n + 4; x := !x lsr 4 end;
  if !x land 0x3 = 0 then begin n := !n + 2; x := !x lsr 2 end;
  if !x land 0x1 = 0 then incr n;
  !n

let iter f s =
  for w = 0 to Array.length s.words - 1 do
    let x = ref s.words.(w) in
    let base = w * bits_per_word in
    while !x <> 0 do
      let b = !x land (- !x) in
      f (base + ntz b);
      x := !x lxor b
    done
  done

let to_buffer s buf =
  let k = ref 0 in
  for w = 0 to Array.length s.words - 1 do
    let x = ref s.words.(w) in
    let base = w * bits_per_word in
    while !x <> 0 do
      let b = !x land (- !x) in
      buf.(!k) <- base + ntz b;
      incr k;
      x := !x lxor b
    done
  done;
  !k

let elements s =
  let acc = ref [] in
  iter (fun i -> acc := i :: !acc) s;
  List.rev !acc

let clear s = Array.fill s.words 0 (Array.length s.words) 0

let equal s1 s2 =
  same_capacity s1 s2;
  s1.words = s2.words

let raw_words s = s.words

let hash s =
  let h = ref 0 in
  for i = 0 to Array.length s.words - 1 do
    (* Fold each word in with a distinct odd multiplier per position so
       the same bits in different words hash apart; wrap-around is fine. *)
    h := (!h * 0x3C79AC49) + s.words.(i) + i
  done;
  let x = !h lxor (!h lsr 29) in
  (x * 0x2545F491) land max_int
