type t = { words : int array; n : int }

let bits_per_word = 63

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative capacity";
  { words = Array.make ((n + bits_per_word - 1) / bits_per_word + 1) 0; n }

let capacity s = s.n

let check s i =
  if i < 0 || i >= s.n then invalid_arg "Bitset: index out of range"

let mem s i =
  check s i;
  s.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let add s i =
  check s i;
  let w = i / bits_per_word in
  s.words.(w) <- s.words.(w) lor (1 lsl (i mod bits_per_word))

let remove s i =
  check s i;
  let w = i / bits_per_word in
  s.words.(w) <- s.words.(w) land lnot (1 lsl (i mod bits_per_word))

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  go 0 x

let cardinal s = Array.fold_left (fun acc w -> acc + popcount w) 0 s.words

let copy s = { s with words = Array.copy s.words }

let same_capacity s1 s2 =
  if s1.n <> s2.n then invalid_arg "Bitset: capacity mismatch"

let union_into ~into s =
  same_capacity into s;
  for i = 0 to Array.length into.words - 1 do
    into.words.(i) <- into.words.(i) lor s.words.(i)
  done

let inter s1 s2 =
  same_capacity s1 s2;
  let r = create s1.n in
  for i = 0 to Array.length r.words - 1 do
    r.words.(i) <- s1.words.(i) land s2.words.(i)
  done;
  r

let subset s1 s2 =
  same_capacity s1 s2;
  let ok = ref true in
  for i = 0 to Array.length s1.words - 1 do
    if s1.words.(i) land lnot s2.words.(i) <> 0 then ok := false
  done;
  !ok

let iter f s =
  for i = 0 to s.n - 1 do
    if s.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0 then
      f i
  done

let elements s =
  let acc = ref [] in
  iter (fun i -> acc := i :: !acc) s;
  List.rev !acc

let clear s = Array.fill s.words 0 (Array.length s.words) 0

let equal s1 s2 =
  same_capacity s1 s2;
  s1.words = s2.words
