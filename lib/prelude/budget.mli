(** Combined search budget: the paper's call-count curtail point (lambda)
    extended with an optional wall-clock deadline and an optional
    cancellation token shared across OCaml 5 domains.

    Budgets make every search {e anytime}: a checker calls {!exhausted}
    before each unit of work and {!spend} after it; on expiry the search
    unwinds and returns its best incumbent together with the {!status}
    that stopped it.

    Determinism: when [deadline_s] is [None] the clock is never read —
    the budget degenerates to a pure integer comparison, so call-bounded
    runs are reproducible bit-for-bit.  With a deadline set, the clock is
    consulted only once per {!check_stride} spends (a power-of-two mask
    test otherwise), bounding the overshoot past the deadline to a few
    dozen cheap Omega calls. *)

(** Cross-domain cancellation flag (an [Atomic.t] under the hood): safe
    to {!cancel} from any domain while searches poll it from workers. *)
type token

val token : unit -> token

(** [derive parent] is a fresh token that also reports cancelled whenever
    [parent] (or any of its ancestors) is cancelled, while {!cancel} on
    the derived token leaves the parent untouched.  This lets a composite
    search (the portfolio racer) cut off its own sides without consuming
    the caller's token. *)
val derive : token -> token

val cancel : token -> unit
val is_cancelled : token -> bool

(** How a search ended.  [Complete] — ran to natural termination (the
    result is whatever optimality the search proves); the other three are
    curtailments: the call budget, the wall-clock deadline, or the shared
    token stopped it first.  In every curtailed case the search still
    returns a legal incumbent. *)
type status = Complete | Curtailed_lambda | Curtailed_deadline | Cancelled

(** Exact variant name, e.g. ["Curtailed_deadline"] — stable, grep-able
    spelling used by CLI output and the benchmark JSON. *)
val status_to_string : status -> string

val is_complete : status -> bool

type limits = {
  calls : int option;       (** max spends (the paper's lambda) *)
  deadline_s : float option;(** wall-clock seconds from {!start} *)
  cancel : token option;    (** shared cancellation token *)
}

(** No limits at all: {!exhausted} is always [None]. *)
val unlimited : limits

(** Replace the clock used for deadlines (default [Unix.gettimeofday]).
    Call once at startup, before any budget is started — e.g. to install
    a true monotonic clock from a benchmarking harness. *)
val set_clock : (unit -> float) -> unit

(** Spends between deadline re-checks (a power of two). *)
val check_stride : int

(** A shared call pool: one lambda split across concurrent searchers.
    Budgets attached to the same pool (via {!start}[ ~pool]) reserve
    calls from it in disjoint slices with a single atomic fetch-and-add
    per slice, so the calls granted across all attached budgets sum to
    at most [calls] under any interleaving.  A pool-attached budget
    reports [Curtailed_lambda] when it needs a fresh slice and the pool
    is drained. *)
type pool

val pool : calls:int -> pool

(** The pool can grant no further calls.  (Some already-granted calls
    may still be unspent in workers' local allowances.) *)
val pool_exhausted : pool -> bool

(** Calls handed out so far (an upper bound on calls actually spent,
    since trailing slice remainders may go unused). *)
val pool_spent : pool -> int

(** Calls reserved per pool slice (a power of two). *)
val claim_chunk : int

type t

(** [start ?pool limits] begins a budget.  Reads the clock iff a
    deadline is set.  With [~pool], call-count curtailment is driven by
    the shared pool (leave [limits.calls] for an additional private cap,
    or [None] for pool-only). *)
val start : ?pool:pool -> limits -> t

(** Record one unit of work (one Omega call). *)
val spend : t -> unit

(** Units spent so far. *)
val spent : t -> int

(** [exhausted t] is [Some reason] once any limit has tripped — sticky:
    after the first [Some] the same reason is returned forever without
    re-reading clock or token.  Checked in the order: cancellation, call
    count, pool, deadline.  Never returns [Some Complete]. *)
val exhausted : t -> status option

(** [expiry t] — which limit has actually tripped, for post-hoc status
    reporting.  Identical to {!exhausted} except that the strided
    deadline gate is bypassed: a deadline that passed between two
    strided clock reads is reported as [Curtailed_deadline] instead of
    [None].  Grants no new pool allowance.  Sticky, and reads the clock
    only when a deadline is set. *)
val expiry : t -> status option

(** Wall time since {!start}; [0.0] when no deadline is set (the clock is
    not read in that case, preserving determinism). *)
val elapsed_s : t -> float
