(* Shared incumbent for parallel branch-and-bound.

   The bound lives in ONE atomic int packing (nops, owner) as
   [nops * 2^owner_bits + (owner + 1)], so numeric order on the packed
   key is exactly lexicographic order on (nops, owner).  The key only
   ever decreases, which makes stale reads sound for alpha-beta: a
   racing reader sees a bound that is at worst older (larger), so it
   prunes no subtree the freshest bound would keep.

   The owner component is the deterministic tie-break: every searcher is
   assigned a rank (its subtree's position in the serial lexicographic
   enumeration; -1 for the seed/probe, which precedes every subtree),
   and an equal-NOP schedule is accepted only from a lower rank.  A
   completed search therefore converges to a timing-independent winner:
   the lowest-ranked subtree containing an optimal schedule — i.e. the
   same (value, schedule) at any worker count.

   The payload (the best schedule itself) is guarded by a mutex; the
   atomic key is only advanced under that mutex, so the payload always
   corresponds to the published key.  Readers on the search hot path
   never touch the mutex — they read the atomic key only. *)

type gate = int Atomic.t

type 'a t = { gate : gate; mu : Mutex.t; mutable payload : 'a option }

let owner_bits = 21
let owner_mask = (1 lsl owner_bits) - 1
let max_task = owner_mask - 2

(* All-ones key: lexicographically after every packable (nops, owner). *)
let empty_key = max_int

let pack ~nops ~task =
  if nops < 0 then invalid_arg "Incumbent: negative nops";
  if task < -1 || task > max_task then invalid_arg "Incumbent: task rank";
  if nops > max_int asr owner_bits then invalid_arg "Incumbent: nops too large";
  (nops lsl owner_bits) lor (task + 1)

let create () =
  { gate = Atomic.make empty_key; mu = Mutex.create (); payload = None }

let gate t = t.gate

let bound g =
  let k = Atomic.get g in
  if k = empty_key then None
  else Some (k asr owner_bits, (k land owner_mask) - 1)

let limit g ~task =
  let k = Atomic.get g in
  if k = empty_key then max_int
  else
    let v = k asr owner_bits in
    let owner = (k land owner_mask) - 1 in
    if owner > task then v + 1 else v

let admits g ~nops ~task = pack ~nops ~task < Atomic.get g

let submit t ~nops ~task make =
  let k = pack ~nops ~task in
  (* Cheap racy reject first: the key is monotone decreasing, so a
     stale read can only let a doomed submission through to the mutex,
     never reject a winning one. *)
  if k >= Atomic.get t.gate then false
  else begin
    Mutex.lock t.mu;
    let accepted = k < Atomic.get t.gate in
    if accepted then begin
      t.payload <- Some (make ());
      Atomic.set t.gate k
    end;
    Mutex.unlock t.mu;
    accepted
  end

let best t =
  Mutex.lock t.mu;
  let r =
    match t.payload with
    | None -> None
    | Some p -> Some (Atomic.get t.gate asr owner_bits, p)
  in
  Mutex.unlock t.mu;
  r
