(** Dense, fixed-capacity sets of small non-negative integers.

    Used for transitive-closure computations over instruction DAGs and for
    the scheduled-set bookkeeping of the search.  All operations are O(1) or
    O(capacity/63); the representation is a flat [int array] of bit words. *)

type t

(** [create n] is the empty set over universe [0 .. n-1]. *)
val create : int -> t

(** Capacity the set was created with. *)
val capacity : t -> int

(** [mem s i] tests membership.  Raises [Invalid_argument] out of range. *)
val mem : t -> int -> bool

(** [add s i] adds [i] in place. *)
val add : t -> int -> unit

(** [remove s i] removes [i] in place. *)
val remove : t -> int -> unit

(** Number of elements currently in the set. *)
val cardinal : t -> int

(** [copy s] is an independent copy of [s]. *)
val copy : t -> t

(** [union_into ~into s] adds every element of [s] to [into].
    Both must share the same capacity. *)
val union_into : into:t -> t -> unit

(** [inter s1 s2] is a fresh set holding the intersection. *)
val inter : t -> t -> t

(** [subset s1 s2] is true when every element of [s1] is in [s2]. *)
val subset : t -> t -> bool

(** [iter f s] applies [f] to every member in increasing order.
    Skips empty words, so cost is O(capacity/63 + cardinal). *)
val iter : (int -> unit) -> t -> unit

(** [to_buffer s buf] writes the members into [buf] in increasing order
    and returns how many were written.  [buf] must have room for
    [cardinal s] elements; entries past the returned count are left
    untouched.  Allocation-free: the search's ready-set snapshot. *)
val to_buffer : t -> int array -> int

(** Members in increasing order. *)
val elements : t -> int list

(** [clear s] empties the set in place. *)
val clear : t -> unit

(** [equal s1 s2] tests extensional equality (same capacity required). *)
val equal : t -> t -> bool

(** The backing word array, shared with the set — read-only by
    convention, never mutate it.  Allocation-free access for callers
    that key hash tables by set contents (the search's transposition
    table). *)
val raw_words : t -> int array

(** A word-mixing hash of the set's contents.  Allocation-free;
    non-negative; equal sets of equal capacity hash equally. *)
val hash : t -> int
