(** Bounded, mutex-protected LRU map from string keys to arbitrary
    values — the schedule cache behind [pipesched_server].

    Unlike {!Memo_table} (a lossy, allocation-free transposition table
    private to one search), this is an exact cache shared {e across}
    requests and domains: every operation takes an internal [Mutex], so
    concurrent readers and writers from different domains are safe.  Keys
    are compared by full string equality — a colliding hash can never
    alias two entries.

    Eviction is strict least-recently-used: {!find} hits and {!put}
    (insert or replace) both move the entry to the most-recent end;
    inserting into a full cache drops the least-recent entry.  Hits,
    misses and evictions are counted for the server's stats line and the
    bench evidence. *)

type 'v t

(** [create ~capacity] — an empty cache holding at most [capacity]
    entries.  [capacity = 0] is legal and makes the cache inert (every
    {!find} misses, {!put} is a no-op) so callers can disable caching
    without branching.  Raises [Invalid_argument] when negative. *)
val create : capacity:int -> 'v t

val capacity : 'v t -> int

(** Entries currently stored. *)
val length : 'v t -> int

(** [find t key] returns the cached value and promotes the entry to
    most-recently-used.  Counts a hit or a miss. *)
val find : 'v t -> string -> 'v option

(** [mem t key] — {!find} without promotion or counter updates. *)
val mem : 'v t -> string -> bool

(** [put t key v] inserts or replaces the binding and promotes it to
    most-recently-used, evicting the least-recently-used entry when the
    cache is over capacity.  No-op when [capacity = 0].

    Chaos: when the [cache_insert] fault site ({!Fault}) is armed, the
    insert may raise {!Fault.Injected} before touching the structure —
    callers for whom the cache is an optimization must contain the
    raise and proceed uncached. *)
val put : 'v t -> string -> 'v -> unit

(** Monotone counters since {!create} (or the last {!clear}). *)
val hits : 'v t -> int

val misses : 'v t -> int
val evictions : 'v t -> int

(** Keys from most- to least-recently-used (a snapshot; mainly for
    tests). *)
val keys_mru : 'v t -> string list

(** Drop every entry and reset the counters. *)
val clear : 'v t -> unit
