(** Deterministic chaos injection.

    A {e fault site} is a named point in the serving stack where an
    artificial failure may be injected: the optimal solver
    ({!Solver}), the schedule-cache insert ({!Cache_insert}), the
    response write back to a client ({!Write_response}), and the
    socket acceptor ({!Accept}).  Sites are {e disarmed} by default and
    cost one array read per check; arming happens once at process
    startup from a spec string ([--faults] or the [PIPESCHED_FAULTS]
    environment variable).

    {2 Determinism}

    Chaos testing is only evidence when a failing run can be replayed.
    An armed site draws {e per decision}, not from a shared mutable
    stream: the verdict for [fire site ~key] is a pure function of the
    site's armed [(prob, seed)] and the FNV-1a hash of [key] — the
    draw is the first value of the splitmix64 stream split off at
    [seed XOR hash key] (see {!Pipesched_prelude.Rng}).  Concurrent
    threads therefore cannot perturb each other's verdicts: whatever
    the interleaving, the same request text meets the same fault, so a
    chaos soak with a fixed load seed and a fixed fault spec produces
    the same outcome multiset every run.  A client that retries with a
    distinct attempt marker (the load client's ["retry"] field)
    changes the key and gets a fresh draw, exactly like a real
    transient fault.

    {2 Spec grammar}

    [site:prob:seed] triples separated by commas, e.g.
    ["solver:0.05:1,write_response:0.02:7"].  [prob] is a float in
    [\[0, 1\]]; [seed] an integer.  Unknown sites, malformed numbers
    and out-of-range probabilities are rejected with a message. *)

type site = Solver | Cache_insert | Write_response | Accept

(** Raised by {!guard} at an armed site whose draw fired.  The payload
    is the site name ({!site_to_string}).  Containment boundaries
    (server request handling, daemon write path) catch it like any
    real exception — injection exercises the same code paths a genuine
    fault would. *)
exception Injected of string

val all_sites : site list

val site_to_string : site -> string
val site_of_string : string -> site option

(** [parse spec] parses the [site:prob:seed,...] grammar.  The empty
    string is the empty arming (all sites disarmed). *)
val parse : string -> ((site * float * int) list, string) result

(** [arm specs] replaces the process-wide arming and resets the fire
    counters.  Not synchronized — call at startup (or in tests),
    before concurrent traffic. *)
val arm : (site * float * int) list -> unit

(** [arm_spec spec] = parse + arm. *)
val arm_spec : string -> (unit, string) result

(** Disarm every site and reset fire counters. *)
val disarm : unit -> unit

val armed : site -> bool

(** [fire site ~key] — [true] iff [site] is armed and its draw for
    [key] comes up under the armed probability (see the determinism
    note above).  Counts the fire.  Disarmed sites are always
    [false] and never hash. *)
val fire : site -> key:string -> bool

(** [guard site ~key] raises {!Injected} iff [fire site ~key]. *)
val guard : site -> key:string -> unit

(** Fires of one site since the last {!arm}/{!disarm}. *)
val injected : site -> int

(** Total fires across all sites since the last {!arm}/{!disarm}. *)
val total_injected : unit -> int
