(** A home-grown propagation/learning (CDCL) scheduler — the second
    optimal backend, racing the branch-and-bound under the portfolio.

    The Ω decision problem "is there a schedule with at most [target]
    NOPs?" is encoded over boolean {e issue-slot} variables [x(i, t)] —
    instruction [i] issues at tick [t] — with every operation pinned to
    its default pipeline, exactly the search space of
    [Optimal.schedule].  With makespan bound [M = n - 1 + target], per
    instruction tick windows [est..lst] come from latency-weighted
    longest paths plus the entry state's pipeline release ticks, and the
    constraints are:

    - {b at-least / at-most one} slot per instruction;
    - {b distinct ticks}: at most one instruction per tick (Ω issues
      strictly increase along the schedule);
    - {b dependence}: [x(u, t)] forbids [x(v, t')] for [t' < t + lat(u)]
      on every edge [u -> v];
    - {b pipe conflicts}: two operations on the same pipeline must issue
      at least [enqueue] ticks apart;
    - a global {b packing} bound (checked at the root and at every
      restart over the level-0 domains): on each pipeline — and over the
      whole block with spacing 1 — the [k] ops with the largest earliest
      ticks cannot all fit before their latest ticks.  This is what lets
      the CP side refute resource-bound targets instantly where the
      enumeration grinds.

    Search is conflict-driven clause learning: eager propagation of the
    binary constraints with implication reasons, 1-UIP conflict analysis
    with activity bumping, two-watched-literal propagation of learned
    nogoods, first-fail decisions (fewest remaining slots, activity
    tie-break) assigning the earliest remaining tick, and geometric
    restarts.  The optimizer tightens the NOP bound iteratively from the
    list-scheduler incumbent: each SAT model is re-evaluated with
    {!Pipesched_machine.Omega.evaluate} (the certified semantics) and
    becomes the new incumbent; UNSAT proves the incumbent optimal.

    Soundness is anchored to Ω on both sides (see DESIGN.md): every Ω
    schedule's issue ticks satisfy the constraint set (so UNSAT refutes
    all of them), and greedy Ω re-evaluation of a model's tick-sorted
    order yields componentwise [<=] issue ticks (so SAT always yields a
    real schedule within the target). *)

open Pipesched_ir
open Pipesched_machine
module Budget = Pipesched_prelude.Budget
module Incumbent = Pipesched_prelude.Incumbent

type stats = {
  queries : int;      (** decision problems solved (bound tightenings) *)
  decisions : int;
  conflicts : int;
  propagations : int; (** literals propagated *)
  restarts : int;
  learned : int;      (** nogoods learned, summed over queries *)
  completed : bool;   (** optimality proved *)
  status : Budget.status;
  proved : int option;
      (** [Some v] iff [completed]: the proved optimal NOP count.  With a
          shared incumbent the proof is relative to the shared bound, so
          the witness schedule may be held by a peer backend and [best]
          may be worse than [v]; standalone, [best.nops = v] always. *)
}

type outcome = {
  best : Omega.result;     (** best schedule found (Ω-evaluated) *)
  initial : Omega.result;  (** the evaluated seed (list) schedule *)
  stats : stats;
}

(** [solve machine dag] minimizes total NOPs over legal schedules with
    default pipeline choices.  [lambda] caps decisions + conflicts (the
    CP analogue of the paper's Ω-call budget; units differ from the
    B&B's).  [deadline_s]/[cancel] make the solve anytime exactly like
    the B&B: on expiry the best incumbent so far is returned with the
    tripping status.  [seed] picks the list-scheduler heuristic for the
    initial incumbent (default [Max_distance], matching
    [Optimal.default_options]).  [shared = (incumbent, rank)] attaches a
    shared incumbent: the seed is submitted at rank [-1], improvements
    at [rank], and a peer's published bound tightens this side's target
    (the portfolio's two-way pruning).  Determinism: with no deadline
    and no shared incumbent the solve is bit-for-bit reproducible — no
    clock reads, no randomness. *)
val solve :
  ?lambda:int ->
  ?deadline_s:float ->
  ?cancel:Budget.token ->
  ?seed:Pipesched_sched.List_sched.heuristic ->
  ?entry:Omega.entry ->
  ?shared:Omega.result Incumbent.t * int ->
  Machine.t ->
  Dag.t ->
  outcome
