(* Conflict-driven clause learning over the issue-slot encoding of Ω.
   See cp.mli for the encoding and the soundness anchors, DESIGN.md §14
   for the full argument.  Everything below is per-query mutable state in
   flat arrays; a query is one decision problem "schedule with <= target
   NOPs?", rebuilt as the optimizer tightens the bound. *)

open Pipesched_ir
open Pipesched_machine
open Pipesched_sched
module Budget = Pipesched_prelude.Budget
module Incumbent = Pipesched_prelude.Incumbent

type stats = {
  queries : int;
  decisions : int;
  conflicts : int;
  propagations : int;
  restarts : int;
  learned : int;
  completed : bool;
  status : Budget.status;
  proved : int option;
}

type outcome = { best : Omega.result; initial : Omega.result; stats : stats }

(* Refuse to build absurdly large encodings (a huge incumbent NOP count
   on a big block); the solve then reports a lambda curtailment with the
   incumbent, like any other budget trip. *)
let max_vars = 1 lsl 20

exception Too_big

(* Growable int vector; watch lists and the clause arena live in these. *)
module Vec = struct
  type t = { mutable a : int array; mutable n : int }

  let create () = { a = [||]; n = 0 }

  let push v x =
    if v.n = Array.length v.a then begin
      let cap = max 4 (2 * Array.length v.a) in
      let a = Array.make cap 0 in
      Array.blit v.a 0 a 0 v.n;
      v.a <- a
    end;
    v.a.(v.n) <- x;
    v.n <- v.n + 1
end

(* Literals: [2*v] asserts slot variable [v] true, [2*v + 1] false. *)
let neg l = l lxor 1

type conflict = No_confl | C_binary of int * int | C_alo of int | C_learned of int

(* Reason tags for implied assignments (decision/unassigned = 0). *)
let r_none = 0
let r_binary = 1 (* arg = the antecedent literal, currently true *)
let r_alo = 2 (* arg = instruction whose other slots are all false *)
let r_clause = 3 (* arg = learned-clause arena offset *)

type query = {
  n : int;
  horizon : int; (* M: largest admissible issue tick *)
  est : int array; (* per instruction *)
  lst : int array;
  var_base : int array; (* var of slot (i, est.(i)) *)
  var_inst : int array; (* var -> instruction *)
  var_tick : int array; (* var -> tick *)
  nvars : int;
  occ : int array array; (* tick -> vars at that tick, all instructions *)
  succs : int array array;
  preds : int array array;
  lat : int array; (* producer latency per instruction *)
  pipe_of : int array; (* default pipe per instruction; -1 resource-free *)
  enq : int array; (* per pipe *)
  pipe_members : int array array; (* pipe -> instructions *)
  (* assignment state *)
  assign : int array; (* var -> 0 unknown / 1 true / -1 false *)
  level : int array; (* var -> decision level *)
  reason_tag : int array;
  reason_arg : int array;
  trail : int array; (* literals in assignment order *)
  mutable trail_n : int;
  mutable qhead : int;
  trail_lim : int array; (* trail size at each decision *)
  mutable level_n : int;
  rem : int array; (* per instruction: non-false slots left *)
  placed : int array; (* per instruction: its true var, or -1 *)
  mutable placed_n : int;
  mutable confl : conflict;
  (* learned clauses: arena of [size; lit...] records, two watches each *)
  arena : Vec.t;
  watches : Vec.t array; (* per literal *)
  act : float array; (* per variable *)
  inst_act : float array; (* per instruction (decision tie-break) *)
  mutable var_inc : float;
  seen : bool array; (* per variable, conflict-analysis scratch *)
  learnt : Vec.t; (* conflict-analysis scratch *)
  (* packing-check scratch *)
  pk_min : int array;
  pk_max : int array;
  pk_sort : int array;
}

let value_lit q l =
  let a = q.assign.(l lsr 1) in
  if l land 1 = 0 then a else -a

(* Assign literal [l] (which must not already be false; callers check),
   recording its reason.  Updates the per-instruction slot counters the
   analysis and the decision heuristic rely on. *)
let enqueue q l ~tag ~arg =
  let v = l lsr 1 in
  q.assign.(v) <- (if l land 1 = 0 then 1 else -1);
  q.level.(v) <- q.level_n;
  q.reason_tag.(v) <- tag;
  q.reason_arg.(v) <- arg;
  q.trail.(q.trail_n) <- l;
  q.trail_n <- q.trail_n + 1;
  let i = q.var_inst.(v) in
  if l land 1 = 0 then begin
    q.placed.(i) <- v;
    q.placed_n <- q.placed_n + 1
  end
  else q.rem.(i) <- q.rem.(i) - 1

(* Falsify slot [u] because the true literal [a] forbids it. *)
let falsify q u ~antecedent =
  match q.assign.(u) with
  | -1 -> ()
  | 1 -> q.confl <- C_binary (neg antecedent, (2 * u) + 1)
  | _ -> enqueue q ((2 * u) + 1) ~tag:r_binary ~arg:antecedent

let var_of q i t = q.var_base.(i) + t - q.est.(i)

(* Propagate the consequences of slot (i, t) being taken: siblings, tick
   occupancy, dependence windows, and same-pipe spacing all falsify. *)
let propagate_true q v =
  let a = 2 * v in
  let i = q.var_inst.(v) and t = q.var_tick.(v) in
  (* at-most-one slot per instruction *)
  let b = q.var_base.(i) in
  let w = q.lst.(i) - q.est.(i) in
  let u = ref b in
  while q.confl == No_confl && !u <= b + w do
    if !u <> v then falsify q !u ~antecedent:a;
    incr u
  done;
  (* at most one instruction per tick *)
  let o = q.occ.(t) in
  let k = ref 0 in
  while q.confl == No_confl && !k < Array.length o do
    let u = o.(!k) in
    if u <> v then falsify q u ~antecedent:a;
    incr k
  done;
  (* dependence: successors at ticks < t + lat(i), predecessors at ticks
     > t - lat(pred) *)
  let ss = q.succs.(i) in
  let k = ref 0 in
  while q.confl == No_confl && !k < Array.length ss do
    let s = ss.(!k) in
    let hi = min q.lst.(s) (t + q.lat.(i) - 1) in
    let t' = ref q.est.(s) in
    while q.confl == No_confl && !t' <= hi do
      falsify q (var_of q s !t') ~antecedent:a;
      incr t'
    done;
    incr k
  done;
  let ps = q.preds.(i) in
  let k = ref 0 in
  while q.confl == No_confl && !k < Array.length ps do
    let p = ps.(!k) in
    let lo = max q.est.(p) (t - q.lat.(p) + 1) in
    let t' = ref lo in
    while q.confl == No_confl && !t' <= q.lst.(p) do
      falsify q (var_of q p !t') ~antecedent:a;
      incr t'
    done;
    incr k
  done;
  (* pipe conflicts: same-pipe mates within the enqueue window *)
  let p = q.pipe_of.(i) in
  if q.confl == No_confl && p >= 0 && q.enq.(p) > 1 then begin
    let e = q.enq.(p) in
    let ms = q.pipe_members.(p) in
    let k = ref 0 in
    while q.confl == No_confl && !k < Array.length ms do
      let j = ms.(!k) in
      if j <> i then begin
        let lo = max q.est.(j) (t - e + 1)
        and hi = min q.lst.(j) (t + e - 1) in
        let t' = ref lo in
        while q.confl == No_confl && !t' <= hi do
          falsify q (var_of q j !t') ~antecedent:a;
          incr t'
        done
      end;
      incr k
    done
  end

(* A slot went false: the instruction may now be forced (one slot left)
   or wiped out (none). *)
let propagate_false q v =
  let i = q.var_inst.(v) in
  if q.placed.(i) < 0 then begin
    if q.rem.(i) = 0 then q.confl <- C_alo i
    else if q.rem.(i) = 1 then begin
      let b = q.var_base.(i) in
      let last = ref (-1) in
      for u = b to b + q.lst.(i) - q.est.(i) do
        if q.assign.(u) = 0 then last := u
      done;
      (* rem = 1 and nothing placed: exactly one unassigned slot left *)
      enqueue q (2 * !last) ~tag:r_alo ~arg:i
    end
  end

(* Two-watched-literal pass over the learned clauses watching [l], which
   has just become false.  Arena layout per clause: [size; lit0; lit1;
   rest...]; watches sit on lit0/lit1. *)
let propagate_watches q l =
  let ws = q.watches.(l) in
  let r = ref 0 and w = ref 0 in
  let arena = q.arena.Vec.a in
  while !r < ws.Vec.n do
    let off = ws.Vec.a.(!r) in
    incr r;
    if q.confl != No_confl then begin
      (* conflict already found: retain the remaining watchers as-is *)
      ws.Vec.a.(!w) <- off;
      incr w
    end
    else begin
      let size = arena.(off) in
      if arena.(off + 1) = l then begin
        arena.(off + 1) <- arena.(off + 2);
        arena.(off + 2) <- l
      end;
      let first = arena.(off + 1) in
      if value_lit q first = 1 then begin
        ws.Vec.a.(!w) <- off;
        incr w
      end
      else begin
        let moved = ref false in
        let k = ref 3 in
        while (not !moved) && !k <= size do
          if value_lit q arena.(off + !k) <> -1 then begin
            arena.(off + 2) <- arena.(off + !k);
            arena.(off + !k) <- l;
            Vec.push q.watches.(arena.(off + 2)) off;
            moved := true
          end;
          incr k
        done;
        if not !moved then begin
          ws.Vec.a.(!w) <- off;
          incr w;
          if value_lit q first = -1 then q.confl <- C_learned off
          else enqueue q first ~tag:r_clause ~arg:off
        end
      end
    end
  done;
  ws.Vec.n <- !w

(* Drain the trail; returns with [q.confl] set on failure. *)
let propagate q =
  let props = ref 0 in
  while q.confl == No_confl && q.qhead < q.trail_n do
    let l = q.trail.(q.qhead) in
    q.qhead <- q.qhead + 1;
    incr props;
    if l land 1 = 0 then begin
      propagate_true q (l lsr 1);
      if q.confl == No_confl then propagate_watches q (neg l)
    end
    else begin
      propagate_false q (l lsr 1);
      if q.confl == No_confl then propagate_watches q (neg l)
    end
  done;
  !props

let rescale q =
  for v = 0 to q.nvars - 1 do
    q.act.(v) <- q.act.(v) *. 1e-100
  done;
  for i = 0 to q.n - 1 do
    q.inst_act.(i) <- q.inst_act.(i) *. 1e-100
  done;
  q.var_inc <- q.var_inc *. 1e-100

let bump q v =
  q.act.(v) <- q.act.(v) +. q.var_inc;
  let i = q.var_inst.(v) in
  q.inst_act.(i) <- q.inst_act.(i) +. q.var_inc;
  if q.act.(v) > 1e100 then rescale q

(* Iterate the false literals of the reason clause that implied [v]'s
   assignment (every yielded literal is false at call time). *)
let iter_reason q v f =
  let tag = q.reason_tag.(v) in
  if tag = r_binary then f (neg q.reason_arg.(v))
  else if tag = r_alo then begin
    let i = q.reason_arg.(v) in
    let b = q.var_base.(i) in
    for u = b to b + q.lst.(i) - q.est.(i) do
      if u <> v then f (2 * u)
    done
  end
  else if tag = r_clause then begin
    let off = q.reason_arg.(v) in
    let arena = q.arena.Vec.a in
    let size = arena.(off) in
    for k = 1 to size do
      let l = arena.(off + k) in
      if l lsr 1 <> v then f l
    done
  end

let iter_conflict q c f =
  match c with
  | No_confl -> ()
  | C_binary (l1, l2) ->
    f l1;
    f l2
  | C_alo i ->
    let b = q.var_base.(i) in
    for u = b to b + q.lst.(i) - q.est.(i) do
      f (2 * u)
    done
  | C_learned off ->
    let arena = q.arena.Vec.a in
    for k = 1 to arena.(off) do
      f arena.(off + k)
    done

(* 1-UIP analysis: returns the asserting literal and the backjump level;
   the learned clause (asserting lit first, backjump-level lit second) is
   appended to the arena and watched.  Standard first-UIP resolution over
   the implication graph, with activity bumps on every resolved var. *)
let analyze q confl =
  let learnt = q.learnt in
  learnt.Vec.n <- 0;
  let count = ref 0 in
  let process l =
    let v = l lsr 1 in
    if (not q.seen.(v)) && q.level.(v) > 0 then begin
      q.seen.(v) <- true;
      bump q v;
      if q.level.(v) >= q.level_n then incr count else Vec.push learnt l
    end
  in
  iter_conflict q confl process;
  let idx = ref (q.trail_n - 1) in
  let uip = ref (-1) in
  while !uip < 0 do
    while not q.seen.(q.trail.(!idx) lsr 1) do
      decr idx
    done;
    let p = q.trail.(!idx) in
    let v = p lsr 1 in
    q.seen.(v) <- false;
    decr count;
    if !count = 0 then uip := p
    else begin
      iter_reason q v process;
      decr idx
    end
  done;
  (* clear the seen marks left on lower-level lits *)
  for k = 0 to learnt.Vec.n - 1 do
    q.seen.(learnt.Vec.a.(k) lsr 1) <- false
  done;
  (* backjump level = highest level in the tail; move its lit to front *)
  let bl = ref 0 and bk = ref (-1) in
  for k = 0 to learnt.Vec.n - 1 do
    let lv = q.level.(learnt.Vec.a.(k) lsr 1) in
    if lv > !bl then begin
      bl := lv;
      bk := k
    end
  done;
  if !bk > 0 then begin
    let tmp = learnt.Vec.a.(0) in
    learnt.Vec.a.(0) <- learnt.Vec.a.(!bk);
    learnt.Vec.a.(!bk) <- tmp
  end;
  (* append [size; neg uip; tail...] to the arena *)
  let size = learnt.Vec.n + 1 in
  let off = q.arena.Vec.n in
  Vec.push q.arena size;
  Vec.push q.arena (neg !uip);
  for k = 0 to learnt.Vec.n - 1 do
    Vec.push q.arena learnt.Vec.a.(k)
  done;
  if size >= 2 then begin
    Vec.push q.watches.(q.arena.Vec.a.(off + 1)) off;
    Vec.push q.watches.(q.arena.Vec.a.(off + 2)) off
  end;
  (neg !uip, !bl, off)

let backtrack q bl =
  if q.level_n > bl then begin
    let target = q.trail_lim.(bl) in
    for k = q.trail_n - 1 downto target do
      let l = q.trail.(k) in
      let v = l lsr 1 in
      let i = q.var_inst.(v) in
      if l land 1 = 0 then begin
        q.placed.(i) <- -1;
        q.placed_n <- q.placed_n - 1
      end
      else q.rem.(i) <- q.rem.(i) + 1;
      q.assign.(v) <- 0;
      q.reason_tag.(v) <- r_none
    done;
    q.trail_n <- target;
    q.qhead <- target;
    q.level_n <- bl
  end

(* Learned-clause housekeeping, run at restarts (decision level 0).
   [analyze] never iterates the reason of a level-0 variable, so every
   level-0 assignment can be downgraded to a reason-free fact — which
   frees the whole arena for strengthening and deletion.  Each clause is
   strengthened by its level-0-false literals; satisfied clauses and
   clauses still wider than [keep_width] are dropped, the rest re-added
   and re-watched.  A unit survivor becomes a level-0 fact; an empty one
   refutes the query (returns false).  Dropping learned clauses is
   always sound — they are entailed — and keeps the watch lists short:
   without deletion the per-conflict cost grows without bound on hard
   UNSAT queries. *)
let keep_width = 30

let reduce_db q =
  for k = 0 to q.trail_n - 1 do
    q.reason_tag.(q.trail.(k) lsr 1) <- r_none
  done;
  for l = 0 to (2 * q.nvars) - 1 do
    q.watches.(l).Vec.n <- 0
  done;
  let old = q.arena.Vec.a and old_n = q.arena.Vec.n in
  let na = Vec.create () in
  let ok = ref true in
  let off = ref 0 in
  while !ok && !off < old_n do
    let size = old.(!off) in
    let sat = ref false in
    let kept = ref 0 in
    for k = 1 to size do
      match value_lit q old.(!off + k) with
      | 1 -> sat := true
      | 0 -> incr kept
      | _ -> ()
    done;
    if (not !sat) && !kept <= keep_width then begin
      if !kept = 0 then ok := false
      else if !kept = 1 then begin
        for k = 1 to size do
          let l = old.(!off + k) in
          if value_lit q l = 0 then enqueue q l ~tag:r_none ~arg:0
        done
      end
      else begin
        let noff = na.Vec.n in
        Vec.push na !kept;
        for k = 1 to size do
          let l = old.(!off + k) in
          if value_lit q l = 0 then Vec.push na l
        done;
        Vec.push q.watches.(na.Vec.a.(noff + 1)) noff;
        Vec.push q.watches.(na.Vec.a.(noff + 2)) noff
      end
    end;
    off := !off + size + 1
  done;
  q.arena.Vec.a <- na.Vec.a;
  q.arena.Vec.n <- na.Vec.n;
  !ok

(* Sound packing bound over the current (level-0, at restarts) domains.
   For any set of ops that must be pairwise [spacing] apart, the ones
   whose earliest tick is >= e need a last issue >= e + (k-1)*spacing;
   if that exceeds every member's latest tick, the query is infeasible.
   Checked per pipeline (spacing = enqueue) and globally over all
   instructions (spacing = 1: tick distinctness).  [members] lists the
   instructions of the group. *)
let pack_infeasible_group q members spacing =
  let k = Array.length members in
  if k < 2 then false
  else begin
    let sort = q.pk_sort in
    for j = 0 to k - 1 do
      let i = members.(j) in
      (* current domain min / max: first and last non-false slots *)
      let b = q.var_base.(i) in
      let w = q.lst.(i) - q.est.(i) in
      (if q.placed.(i) >= 0 then begin
         q.pk_min.(i) <- q.var_tick.(q.placed.(i));
         q.pk_max.(i) <- q.pk_min.(i)
       end
       else begin
         let lo = ref (-1) and hi = ref (-1) in
         for u = b to b + w do
           if q.assign.(u) <> -1 then begin
             if !lo < 0 then lo := u;
             hi := u
           end
         done;
         (* a wiped-out domain is caught by propagation, not here *)
         q.pk_min.(i) <- (if !lo < 0 then q.est.(i) else q.var_tick.(!lo));
         q.pk_max.(i) <- (if !hi < 0 then q.lst.(i) else q.var_tick.(!hi))
       end);
      sort.(j) <- i
    done;
    (* insertion sort by domain min (groups are small) *)
    for j = 1 to k - 1 do
      let x = sort.(j) in
      let m = ref (j - 1) in
      while !m >= 0 && q.pk_min.(sort.(!m)) > q.pk_min.(x) do
        sort.(!m + 1) <- sort.(!m);
        decr m
      done;
      sort.(!m + 1) <- x
    done;
    let bad = ref false in
    let max_lst = ref min_int in
    for j = k - 1 downto 0 do
      let i = sort.(j) in
      if q.pk_max.(i) > !max_lst then max_lst := q.pk_max.(i);
      if q.pk_min.(i) + ((k - 1 - j) * spacing) > !max_lst then bad := true
    done;
    !bad
  end

let pack_infeasible q all_insts =
  let bad = ref (pack_infeasible_group q all_insts 1) in
  let p = ref 0 in
  while (not !bad) && !p < Array.length q.enq do
    if q.enq.(!p) > 1 then
      bad := pack_infeasible_group q q.pipe_members.(!p) q.enq.(!p);
    incr p
  done;
  !bad

(* First-fail decision: the unplaced instruction with the fewest
   remaining slots, activity then index breaking ties; its value is the
   earliest remaining tick (chronological construction finds tight
   schedules fast; learned nogoods redirect it where it is wrong). *)
let decide q =
  let best = ref (-1) in
  for i = 0 to q.n - 1 do
    if q.placed.(i) < 0 then
      if
        !best < 0
        || q.rem.(i) < q.rem.(!best)
        || (q.rem.(i) = q.rem.(!best) && q.inst_act.(i) > q.inst_act.(!best))
      then best := i
  done;
  let i = !best in
  let b = q.var_base.(i) in
  let v = ref (-1) in
  let u = ref b in
  while !v < 0 do
    if q.assign.(!u) = 0 then v := !u;
    incr u
  done;
  q.trail_lim.(q.level_n) <- q.trail_n;
  q.level_n <- q.level_n + 1;
  enqueue q (2 * !v) ~tag:r_none ~arg:0

(* ------------------------------------------------------------------ *)
(* Encoding construction.                                              *)

type built = Infeasible | Query of query

let build machine dag ~entry ~target =
  let n = Dag.length dag in
  let blk = Dag.block dag in
  let npipes = Machine.pipe_count machine in
  let horizon = n - 1 + target in
  let pipe_of =
    Array.init n (fun i ->
        match Machine.default_pipe machine (Block.tuple_at blk i).Tuple.op with
        | Some p -> p
        | None -> -1)
  in
  let lat =
    Array.init n (fun i ->
        if pipe_of.(i) >= 0 then (Machine.pipe machine pipe_of.(i)).Pipe.latency
        else 1)
  in
  let enq =
    Array.init npipes (fun p -> (Machine.pipe machine p).Pipe.enqueue)
  in
  let preds = Array.init n (fun i -> Dag.preds_arr dag i) in
  let succs = Array.init n (fun i -> Dag.succs_arr dag i) in
  (* earliest ticks: entry release + latency-weighted longest path (block
     order is topological) *)
  let est = Array.make n 0 in
  let feasible = ref true in
  for i = 0 to n - 1 do
    let e = ref 0 in
    (if pipe_of.(i) >= 0 then
       let rel = entry.Omega.pipe_last_use.(pipe_of.(i)) + enq.(pipe_of.(i)) in
       if rel > !e then e := rel);
    Array.iter
      (fun u ->
        let a = est.(u) + lat.(u) in
        if a > !e then e := a)
      preds.(i);
    est.(i) <- !e
  done;
  (* latest ticks: backward from the horizon *)
  let lst = Array.make n horizon in
  for i = n - 1 downto 0 do
    Array.iter
      (fun s ->
        let b = lst.(s) - lat.(i) in
        if b < lst.(i) then lst.(i) <- b)
      succs.(i);
    if est.(i) > lst.(i) then feasible := false
  done;
  if not !feasible then Infeasible
  else begin
    let var_base = Array.make n 0 in
    let nvars = ref 0 in
    for i = 0 to n - 1 do
      var_base.(i) <- !nvars;
      nvars := !nvars + (lst.(i) - est.(i) + 1)
    done;
    let nvars = !nvars in
    if nvars > max_vars then raise Too_big;
    let var_inst = Array.make nvars 0 and var_tick = Array.make nvars 0 in
    for i = 0 to n - 1 do
      for t = est.(i) to lst.(i) do
        let v = var_base.(i) + t - est.(i) in
        var_inst.(v) <- i;
        var_tick.(v) <- t
      done
    done;
    let occ_n = Array.make (horizon + 1) 0 in
    for v = 0 to nvars - 1 do
      occ_n.(var_tick.(v)) <- occ_n.(var_tick.(v)) + 1
    done;
    let occ = Array.init (horizon + 1) (fun t -> Array.make occ_n.(t) 0) in
    Array.fill occ_n 0 (horizon + 1) 0;
    for v = 0 to nvars - 1 do
      let t = var_tick.(v) in
      occ.(t).(occ_n.(t)) <- v;
      occ_n.(t) <- occ_n.(t) + 1
    done;
    let members_n = Array.make (max npipes 1) 0 in
    for i = 0 to n - 1 do
      if pipe_of.(i) >= 0 then
        members_n.(pipe_of.(i)) <- members_n.(pipe_of.(i)) + 1
    done;
    let pipe_members =
      Array.init (max npipes 1) (fun p ->
          Array.make (if p < npipes then members_n.(p) else 0) 0)
    in
    Array.fill members_n 0 (Array.length members_n) 0;
    for i = 0 to n - 1 do
      let p = pipe_of.(i) in
      if p >= 0 then begin
        pipe_members.(p).(members_n.(p)) <- i;
        members_n.(p) <- members_n.(p) + 1
      end
    done;
    let q =
      {
        n;
        horizon;
        est;
        lst;
        var_base;
        var_inst;
        var_tick;
        nvars;
        occ;
        succs;
        preds;
        lat;
        pipe_of;
        enq;
        pipe_members;
        assign = Array.make nvars 0;
        level = Array.make nvars 0;
        reason_tag = Array.make nvars r_none;
        reason_arg = Array.make nvars 0;
        trail = Array.make nvars 0;
        trail_n = 0;
        qhead = 0;
        trail_lim = Array.make (n + 1) 0;
        level_n = 0;
        rem = Array.init n (fun i -> lst.(i) - est.(i) + 1);
        placed = Array.make n (-1);
        placed_n = 0;
        confl = No_confl;
        arena = Vec.create ();
        watches = Array.init (2 * nvars) (fun _ -> Vec.create ());
        act = Array.make nvars 0.0;
        inst_act = Array.make n 0.0;
        var_inc = 1.0;
        seen = Array.make nvars false;
        learnt = Vec.create ();
        pk_min = Array.make n 0;
        pk_max = Array.make n 0;
        pk_sort = Array.make n 0;
      }
    in
    Query q
  end

(* ------------------------------------------------------------------ *)
(* One decision problem under the shared budget.                       *)

type acc = {
  mutable a_decisions : int;
  mutable a_conflicts : int;
  mutable a_props : int;
  mutable a_restarts : int;
  mutable a_learned : int;
}

type qres = Sat of int array | Unsat | Curtailed of Budget.status | New_bound of int

(* [ext_bound] polls the shared incumbent; a peer bound at or below the
   target answers this query from outside (a witness schedule exists),
   so the optimizer rebuilds at the tighter target. *)
let run_query q budget acc ~target ~all_insts ~ext_bound =
  if pack_infeasible q all_insts then Unsat
  else begin
    let restart_lim = ref 128 in
    let since_restart = ref 0 in
    let result = ref None in
    while !result = None do
      let props = propagate q in
      acc.a_props <- acc.a_props + props;
      match q.confl with
      | No_confl ->
        if q.placed_n = q.n then begin
          let order = Array.make q.n 0 in
          for i = 0 to q.n - 1 do
            order.(i) <- i
          done;
          Array.sort
            (fun a b -> compare q.var_tick.(q.placed.(a)) q.var_tick.(q.placed.(b)))
            order;
          result := Some (Sat order)
        end
        else begin
          let ext =
            if acc.a_decisions land 63 = 0 then ext_bound () else None
          in
          match ext with
          | Some v when v <= target -> result := Some (New_bound v)
          | _ ->
            (match Budget.exhausted budget with
             | Some s -> result := Some (Curtailed s)
             | None ->
               Budget.spend budget;
               acc.a_decisions <- acc.a_decisions + 1;
               decide q)
        end
      | confl ->
        if q.level_n = 0 then result := Some Unsat
        else begin
          Budget.spend budget;
          acc.a_conflicts <- acc.a_conflicts + 1;
          incr since_restart;
          let asserting, bl, off = analyze q confl in
          acc.a_learned <- acc.a_learned + 1;
          q.confl <- No_confl;
          backtrack q bl;
          enqueue q asserting ~tag:r_clause ~arg:off;
          q.var_inc <- q.var_inc /. 0.95;
          if !since_restart >= !restart_lim then begin
            acc.a_restarts <- acc.a_restarts + 1;
            since_restart := 0;
            (* capped growth: deletion happens at restarts, so they must
               keep coming on long queries *)
            restart_lim := min (!restart_lim * 3 / 2) 2048;
            backtrack q 0;
            if not (reduce_db q) then result := Some Unsat
            else if pack_infeasible q all_insts then result := Some Unsat
            else
              match Budget.exhausted budget with
              | Some s -> result := Some (Curtailed s)
              | None -> ()
          end
        end
    done;
    match !result with Some r -> r | None -> assert false
  end

(* ------------------------------------------------------------------ *)
(* Optimization: tighten the NOP bound from the list incumbent.        *)

(* Root lower bound on NOPs of any schedule: the latency-weighted
   critical path and the packing bound, both over the unbounded-horizon
   windows.  Closing [ub] against it skips the final UNSAT query. *)
let root_lower_bound machine dag ~entry =
  let n = Dag.length dag in
  match build machine dag ~entry ~target:(max 1 n * (1 + 8)) with
  | Infeasible -> 0
  | Query q ->
    (* critical path: est + latency tail *)
    let tail = Array.make n 0 in
    let span = ref 0 in
    for i = n - 1 downto 0 do
      Array.iter
        (fun s ->
          let t = q.lat.(i) + tail.(s) in
          if t > tail.(i) then tail.(i) <- t)
        q.succs.(i);
      if q.est.(i) + tail.(i) > !span then span := q.est.(i) + tail.(i)
    done;
    (* packing: the suffix bound per group, over est-sorted members *)
    let group members spacing =
      let k = Array.length members in
      if k >= 2 then begin
        let sort = Array.copy members in
        Array.sort (fun a b -> compare q.est.(a) q.est.(b)) sort;
        for j = 0 to k - 1 do
          let need = q.est.(sort.(j)) + ((k - 1 - j) * spacing) in
          if need > !span then span := need
        done
      end
    in
    group (Array.init n (fun i -> i)) 1;
    for p = 0 to Array.length q.enq - 1 do
      if q.enq.(p) > 1 then group q.pipe_members.(p) q.enq.(p)
    done;
    max 0 (!span - (n - 1))

let solve ?(lambda = 200_000) ?deadline_s ?cancel
    ?(seed = List_sched.Max_distance) ?entry ?shared machine dag =
  let n = Dag.length dag in
  let entry_v =
    match entry with Some e -> e | None -> Omega.cold_entry machine
  in
  let seed_order = List_sched.schedule seed dag in
  let initial = Omega.evaluate ?entry machine dag ~order:seed_order in
  let budget =
    Budget.start { Budget.calls = Some lambda; deadline_s; cancel }
  in
  (match shared with
   | Some (inc, _) ->
     ignore
       (Incumbent.submit inc ~nops:initial.Omega.nops ~task:(-1) (fun () ->
            initial)
         : bool)
   | None -> ());
  let ext_bound =
    match shared with
    | None -> fun () -> None
    | Some (inc, _) ->
      let gate = Incumbent.gate inc in
      fun () ->
        (match Incumbent.bound gate with
         | Some (v, _) -> Some v
         | None -> None)
  in
  let submit r =
    match shared with
    | Some (inc, rank) ->
      ignore
        (Incumbent.submit inc ~nops:r.Omega.nops ~task:rank (fun () -> r)
          : bool)
    | None -> ()
  in
  let acc =
    { a_decisions = 0; a_conflicts = 0; a_props = 0; a_restarts = 0;
      a_learned = 0 }
  in
  let queries = ref 0 in
  let best = ref initial in
  let ub = ref initial.Omega.nops in
  let status = ref Budget.Complete in
  let completed = ref false in
  let all_insts = Array.init n (fun i -> i) in
  (try
     if n = 0 then completed := true
     else begin
       (* Binary search on the NOP count between the root lower bound and
          the incumbent: UNSAT (or an infeasible horizon) raises the
          floor, a model lowers the ceiling to its evaluated NOP count.
          Meets at the optimum in log(gap) queries — the list seed can be
          far above the optimum, and stepping down one NOP at a time
          would re-prove a long chain of easy SAT queries. *)
       let lb = ref (root_lower_bound machine dag ~entry:entry_v) in
       let running = ref true in
       while !running do
         (match ext_bound () with
          | Some v when v < !ub -> ub := v
          | _ -> ());
         if !ub <= !lb then begin
           completed := true;
           running := false
         end
         else begin
           let target = !lb + ((!ub - 1 - !lb) / 2) in
           match build machine dag ~entry:entry_v ~target with
           | Infeasible -> lb := target + 1
           | Query q ->
             incr queries;
             (match run_query q budget acc ~target ~all_insts ~ext_bound with
              | Unsat -> lb := target + 1
              | Sat order ->
                let r = Omega.evaluate ?entry machine dag ~order in
                (* Ω re-evaluation can only shift issues earlier than the
                   model's ticks (DESIGN §14); a miss here is an encoding
                   soundness bug. *)
                assert (r.Omega.nops <= target);
                if r.Omega.nops < !best.Omega.nops then best := r;
                submit r;
                if r.Omega.nops < !ub then ub := r.Omega.nops
              | New_bound v -> if v < !ub then ub := v
              | Curtailed s ->
                status := s;
                running := false)
         end
       done
     end
   with Too_big -> status := Budget.Curtailed_lambda);
  let stats =
    {
      queries = !queries;
      decisions = acc.a_decisions;
      conflicts = acc.a_conflicts;
      propagations = acc.a_props;
      restarts = acc.a_restarts;
      learned = acc.a_learned;
      completed = !completed;
      status = (if !completed then Budget.Complete else !status);
      proved = (if !completed then Some !ub else None);
    }
  in
  { best = !best; initial; stats }
