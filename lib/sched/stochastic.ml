open Pipesched_ir
open Pipesched_machine
module Rng = Pipesched_prelude.Rng

type outcome = {
  best : Omega.result;
  initial : Omega.result;
  evaluations : int;
}

let anneal ?(seed = 1) ?(budget = 1000) ?(t0 = 2.0) ?(cooling = 0.995)
    machine dag =
  let n = Dag.length dag in
  let rng = Rng.create seed in
  let order = List_sched.schedule List_sched.Max_distance dag in
  let initial = Omega.evaluate machine dag ~order in
  if n < 2 then { best = initial; initial; evaluations = 1 }
  else begin
    let current = Array.copy order in
    let current_cost = ref initial.Omega.nops in
    let best = ref initial in
    let evaluations = ref 1 in
    let depends u v =
      List.mem v (Dag.succs dag u) || List.mem u (Dag.succs dag v)
    in
    let temperature = ref t0 in
    let steps = max 0 (budget - 1) in
    for _ = 1 to steps do
      (* Swap a random adjacent, independent pair. *)
      let k = Rng.int rng (n - 1) in
      if not (depends current.(k) current.(k + 1)) then begin
        let a = current.(k) in
        current.(k) <- current.(k + 1);
        current.(k + 1) <- a;
        let r = Omega.evaluate machine dag ~order:current in
        incr evaluations;
        let delta = float_of_int (r.Omega.nops - !current_cost) in
        let accept =
          delta <= 0.0
          || Rng.float rng < exp (-.delta /. max !temperature 1e-6)
        in
        if accept then begin
          current_cost := r.Omega.nops;
          if r.Omega.nops < !best.Omega.nops then best := r
        end
        else begin
          (* revert *)
          let a = current.(k) in
          current.(k) <- current.(k + 1);
          current.(k + 1) <- a
        end
      end;
      temperature := !temperature *. cooling
    done;
    { best = !best; initial; evaluations = !evaluations }
  end
