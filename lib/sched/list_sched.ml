open Pipesched_ir
open Pipesched_machine
module Rng = Pipesched_prelude.Rng

type heuristic =
  | Max_distance
  | Latency_weighted of Machine.t
  | Source_order
  | Random_order of int

let priorities heuristic dag =
  let n = Dag.length dag in
  match heuristic with
  | Max_distance ->
    (* Primary key: unit-weight height (longest dependence chain below);
       secondary: number of transitive descendants.  Packed into one int. *)
    let h = Dag.heights dag ~edge_weight:(fun ~src:_ ~dst:_ -> 1) in
    Array.init n (fun i ->
        let desc =
          Pipesched_prelude.Bitset.cardinal (Dag.descendants dag i)
        in
        (h.(i) * (n + 1)) + desc)
  | Latency_weighted machine ->
    let blk = Dag.block dag in
    let lat pos = Machine.latency machine (Block.tuple_at blk pos).Tuple.op in
    let h = Dag.heights dag ~edge_weight:(fun ~src ~dst:_ -> lat src) in
    Array.init n (fun i ->
        let desc =
          Pipesched_prelude.Bitset.cardinal (Dag.descendants dag i)
        in
        (h.(i) * (n + 1)) + desc)
  | Source_order -> Array.init n (fun i -> n - i)
  | Random_order seed ->
    let rng = Rng.create seed in
    Array.init n (fun _ -> Rng.bits rng)

let schedule heuristic dag =
  let n = Dag.length dag in
  let prio = priorities heuristic dag in
  let unsched_preds =
    Array.init n (fun i -> List.length (Dag.preds dag i))
  in
  let emitted = Array.make n false in
  let order = Array.make n 0 in
  for k = 0 to n - 1 do
    (* Pick the ready position with the greatest priority; ties go to the
       smallest original position. *)
    let best = ref (-1) in
    for i = n - 1 downto 0 do
      if (not emitted.(i)) && unsched_preds.(i) = 0
         && (!best = -1 || prio.(i) >= prio.(!best))
      then best := i
    done;
    if !best = -1 then begin
      (* Unemitted instructions remain but none is ready: every one of
         them waits on another unemitted one, i.e. the dependence graph
         has a cycle.  Walk unemitted-predecessor links until a node
         repeats and report that cycle (by original position and tuple
         id) so the offending input is identifiable. *)
      let blk = Dag.block dag in
      let name i = Printf.sprintf "%d(t%d)" i (Block.tuple_at blk i).Tuple.id in
      let next i =
        List.find_opt (fun u -> not emitted.(u)) (Dag.preds dag i)
      in
      let start =
        let s = ref (-1) in
        for i = n - 1 downto 0 do
          if (not emitted.(i)) && next i <> None then s := i
        done;
        !s
      in
      let witness =
        if start < 0 then "unavailable"
        else begin
          let rec chase seen i =
            if List.mem i seen then
              (* Drop the walk-in prefix: the cycle is the path from the
                 first occurrence of [i] back to [i]. *)
              let rec from_first = function
                | [] -> []
                | j :: rest -> if j = i then j :: rest else from_first rest
              in
              from_first (List.rev (i :: seen))
            else
              match next i with
              | Some u -> chase (i :: seen) u
              | None -> List.rev (i :: seen)
          in
          String.concat " -> " (List.map name (chase [] start))
        end
      in
      invalid_arg
        (Printf.sprintf
           "List_sched.schedule: cyclic DAG — %d of %d instructions \
            scheduled, no ready candidate; cycle witness: %s"
           k n witness)
    end;
    order.(k) <- !best;
    emitted.(!best) <- true;
    List.iter
      (fun v -> unsched_preds.(v) <- unsched_preds.(v) - 1)
      (Dag.succs dag !best)
  done;
  order

let order_by_priority heuristic dag =
  let n = Dag.length dag in
  let prio = priorities heuristic dag in
  let idx = Array.init n (fun i -> i) in
  (* Stable sort by descending priority; equal priorities keep block order. *)
  let cmp a b =
    if prio.(a) <> prio.(b) then compare prio.(b) prio.(a) else compare a b
  in
  Array.sort cmp idx;
  idx
