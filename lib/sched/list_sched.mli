(** The list scheduler (§3.2).

    Produces the initial schedule that seeds the branch-and-bound search.
    The paper's heuristic (from [ZaD90]) "arranges the tuples into a
    sequential order so that the distance between each instruction and the
    instructions that depend on it is as large as possible", and §4.1 notes
    the list scheduler does {e not} consult the pipeline tables — the seed
    is machine-independent.  {!Max_distance} realizes this; the other
    heuristics exist for comparison and ablation. *)

open Pipesched_ir
open Pipesched_machine

type heuristic =
  | Max_distance
      (** greedy ready-list order by descending DAG height (unit edge
          weights), ties broken by descendant count then block order: the
          machine-independent [ZaD90]-style heuristic *)
  | Latency_weighted of Machine.t
      (** like {!Max_distance} but edges weighted by the producer's pipeline
          latency on the given machine (ablation: a machine-aware seed) *)
  | Source_order
      (** the block's original order (ablation: no list scheduling) *)
  | Random_order of int
      (** a uniformly random topological order from the given seed
          (ablation: a poor seed for the alpha-beta synergy study) *)

(** [priorities heuristic dag] assigns each position a static priority;
    greater means schedule earlier. *)
val priorities : heuristic -> Dag.t -> int array

(** [schedule heuristic dag] is a legal order (new position -> original
    position): at each step the ready instruction with the greatest
    priority is emitted. *)
val schedule : heuristic -> Dag.t -> int array

(** [order_by_priority heuristic dag] is all positions sorted by descending
    priority (not necessarily a legal schedule); the search uses it as its
    candidate-enumeration order. *)
val order_by_priority : heuristic -> Dag.t -> int array
