(** A stochastic baseline: simulated annealing over legal schedules.

    Metaheuristics are the other classic answer to NP-complete scheduling;
    this one gives the branch-and-bound a budget-matched competitor in the
    evaluation ladder.  State: a legal order (seeded by the list
    scheduler).  Move: swap a random adjacent pair with no dependence
    between them (legality-preserving by construction).  Acceptance:
    strictly better always, worse with probability [exp (-delta / T)]
    under geometric cooling.  Cost: one full Omega evaluation per step, so
    [budget] is comparable to the search's Omega-call counts divided by
    the block length. *)

open Pipesched_ir
open Pipesched_machine

type outcome = {
  best : Omega.result;
  initial : Omega.result;   (** the list-schedule seed *)
  evaluations : int;        (** full Omega evaluations performed *)
}

(** [anneal ?seed ?budget ?t0 ?cooling machine dag] runs the annealer.
    Defaults: [seed 1], [budget 1000] evaluations, initial temperature
    [t0 = 2.0], [cooling = 0.995] per step.  The returned best is never
    worse than the seed. *)
val anneal :
  ?seed:int -> ?budget:int -> ?t0:float -> ?cooling:float ->
  Machine.t -> Dag.t -> outcome
