(** Baseline schedulers and search-space counters (§1, §2.3, Table 1).

    These provide the comparison points of the paper's evaluation:

    - the size of the unpruned exhaustive search ([n!]),
    - the "pruning illegal only" search, which enumerates every legal
      (topological) order and evaluates each with Omega,
    - greedy one-pass heuristics in the style of Abraham et al. [AbP88] and
      Gross [Gro83] (reconstructed; see DESIGN.md). *)

open Pipesched_ir
open Pipesched_machine

(** [factorial_float n] is [n!] as a float (the paper's "Exhaustive Search
    Calls" column; exact up to 2^53, the right magnitude beyond). *)
val factorial_float : int -> float

(** [count_legal_schedules ?cutoff ?limits dag] counts topological orders
    of the DAG, stopping at [cutoff] (default [10_000_000]).  [`Exact n]
    when the count completed, [`At_least m] when the [cutoff] ceiling or
    the [limits] budget (deadline / cancellation; default
    {!Pipesched_prelude.Budget.unlimited}) stopped it first — the paper's
    ">9,999,000" entries. *)
val count_legal_schedules :
  ?cutoff:int ->
  ?limits:Pipesched_prelude.Budget.limits ->
  Dag.t ->
  [ `Exact of int | `At_least of int ]

(** Result of an enumeration-based search. *)
type search_result = {
  best : Omega.result;
  schedules_tried : int;  (** complete schedules evaluated (Omega calls) *)
  complete : bool;        (** false when a cutoff or budget stopped it *)
  status : Pipesched_prelude.Budget.status;
      (** [Complete], or which limit curtailed the enumeration
          ([Curtailed_lambda] covers the [cutoff] ceiling too); the
          returned [best] is a legal schedule in every case *)
}

(** [legal_only_search ?cutoff ?limits machine dag] evaluates {e every}
    legal order (up to [cutoff] complete schedules, default [10_000_000],
    and within the optional wall-clock/cancellation budget [limits]) and
    returns the best.  Optimal when [complete] — this is the "pruning
    illegal calls" baseline of Table 1.  Exponential: only run on small
    blocks. *)
val legal_only_search :
  ?cutoff:int ->
  ?limits:Pipesched_prelude.Budget.limits ->
  Machine.t ->
  Dag.t ->
  search_result

(** [greedy machine dag] is the one-pass earliest-issue heuristic in the
    spirit of Abraham et al.: at each step, schedule the ready instruction
    needing the fewest NOPs right now, breaking ties toward the greater
    DAG height, then the smaller original position.  Returns the order. *)
val greedy : Machine.t -> Dag.t -> int array

(** [gross machine dag] reconstructs Gross's postpass heuristic flavor:
    among ready instructions that can issue without any NOP, pick the one
    with the most immediate successors (unblocking the most work), ties to
    greater height; if every candidate needs NOPs, fall back to the
    fewest-NOPs choice.  Returns the order. *)
val gross : Machine.t -> Dag.t -> int array
