open Pipesched_ir
open Pipesched_machine
module Budget = Pipesched_prelude.Budget

let factorial_float n =
  let rec go acc k = if k <= 1 then acc else go (acc *. float_of_int k) (k - 1) in
  go 1.0 n

exception Cutoff_hit
exception Budget_hit

let count_legal_schedules ?(cutoff = 10_000_000) ?(limits = Budget.unlimited)
    dag =
  let n = Dag.length dag in
  let unsched_preds = Array.init n (fun i -> List.length (Dag.preds dag i)) in
  let emitted = Array.make n false in
  let budget = Budget.start limits in
  let count = ref 0 in
  let rec go depth =
    if depth = n then begin
      incr count;
      if !count >= cutoff then raise Cutoff_hit
    end
    else
      for i = 0 to n - 1 do
        if (not emitted.(i)) && unsched_preds.(i) = 0 then begin
          (* One node expansion is the unit of work bounded by [limits]
             (this counter never touches Omega, so there is no Omega call
             to charge). *)
          (match Budget.exhausted budget with
           | Some _ -> raise Budget_hit
           | None -> ());
          Budget.spend budget;
          emitted.(i) <- true;
          List.iter
            (fun v -> unsched_preds.(v) <- unsched_preds.(v) - 1)
            (Dag.succs dag i);
          go (depth + 1);
          List.iter
            (fun v -> unsched_preds.(v) <- unsched_preds.(v) + 1)
            (Dag.succs dag i);
          emitted.(i) <- false
        end
      done
  in
  match go 0 with
  | () -> `Exact !count
  | exception Cutoff_hit -> `At_least cutoff
  | exception Budget_hit -> `At_least !count

type search_result = {
  best : Omega.result;
  schedules_tried : int;
  complete : bool;
  status : Budget.status;
}

let legal_only_search ?(cutoff = 10_000_000) ?(limits = Budget.unlimited)
    machine dag =
  let n = Dag.length dag in
  let st = Omega.State.create machine dag in
  let budget = Budget.start limits in
  let tried = ref 0 in
  let best = ref None in
  let rec go depth =
    if depth = n then begin
      incr tried;
      let r = Omega.State.complete_greedily st in
      (match !best with
       | Some (b : Omega.result) when b.nops <= r.nops -> ()
       | Some _ | None -> best := Some r);
      if !tried >= cutoff then raise Cutoff_hit
    end
    else
      for i = 0 to n - 1 do
        if Omega.State.is_ready st i then begin
          (* Each Omega push is one unit of budgeted work, checked before
             it is spent — on expiry the best incumbent so far is
             returned (anytime behavior). *)
          (match Budget.exhausted budget with
           | Some _ -> raise Budget_hit
           | None -> ());
          Budget.spend budget;
          Omega.State.push st i;
          go (depth + 1);
          Omega.State.pop st
        end
      done
  in
  let complete, status =
    match go 0 with
    | () -> (true, Budget.Complete)
    | exception Cutoff_hit -> (false, Budget.Curtailed_lambda)
    | exception Budget_hit ->
      ( false,
        match Budget.exhausted budget with
        | Some s -> s
        | None -> Budget.Curtailed_lambda )
  in
  match !best with
  | Some best -> { best; schedules_tried = !tried; complete; status }
  | None ->
    (* No complete schedule reached (n = 0, or the budget tripped before
       the first completion): fall back to evaluating the block order,
       which is legal because block order is topological. *)
    { best = Omega.evaluate machine dag ~order:(Omega.identity_order n);
      schedules_tried = (if n = 0 then 1 else !tried);
      complete;
      status }

let greedy machine dag =
  let n = Dag.length dag in
  let h = Dag.heights dag ~edge_weight:(fun ~src:_ ~dst:_ -> 1) in
  let st = Omega.State.create machine dag in
  let order = Array.make n 0 in
  for k = 0 to n - 1 do
    let best = ref (-1) and best_eta = ref max_int in
    for i = n - 1 downto 0 do
      if Omega.State.is_ready st i then begin
        Omega.State.push st i;
        let eta = Omega.State.last_eta st in
        Omega.State.pop st;
        if
          eta < !best_eta
          || (eta = !best_eta && (!best = -1 || h.(i) >= h.(!best)))
        then begin
          best := i;
          best_eta := eta
        end
      end
    done;
    Omega.State.push st !best;
    order.(k) <- !best
  done;
  order

let gross machine dag =
  let n = Dag.length dag in
  let h = Dag.heights dag ~edge_weight:(fun ~src:_ ~dst:_ -> 1) in
  let fanout i = List.length (Dag.succs dag i) in
  let st = Omega.State.create machine dag in
  let order = Array.make n 0 in
  for k = 0 to n - 1 do
    let eta_of i =
      Omega.State.push st i;
      let eta = Omega.State.last_eta st in
      Omega.State.pop st;
      eta
    in
    (* Prefer zero-NOP candidates by fanout then height; otherwise take the
       candidate with the fewest NOPs (fanout as tie-break). *)
    let best = ref (-1) and best_key = ref (max_int, 0, 0) in
    for i = n - 1 downto 0 do
      if Omega.State.is_ready st i then begin
        let eta = eta_of i in
        let key = (eta, -fanout i, -h.(i)) in
        if !best = -1 || key <= !best_key then begin
          best := i;
          best_key := key
        end
      end
    done;
    Omega.State.push st !best;
    order.(k) <- !best
  done;
  order
