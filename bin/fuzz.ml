(* Differential fuzzing harness: random machine descriptions x random
   compiled blocks, every scheduler, every result independently
   certified.  Cases whose (machine fingerprint, canonical block) pair
   was already fuzzed are answered from the earlier verdict instead of
   re-run — small random blocks recur, and certifying an isomorphic
   presentation on the same machine proves nothing new.  A failing case
   is shrunk greedily and written to fuzz-repro/fuzz-repro-<seed>.json
   (directory created on demand) so it can be replayed and minimized
   further by hand.  Exit status: 0 = all cases clean, 1 = at least one
   failure. *)

open Pipesched_ir
open Pipesched_machine
open Pipesched_sched
open Pipesched_core
module Rng = Pipesched_prelude.Rng
module Generator = Pipesched_synth.Generator
module Certify = Pipesched_verify.Certify

(* ------------------------------------------------------------------ *)
(* One case: run every scheduler and collect labelled violations.      *)

let run_case ~lambda ~search_jobs machine blk =
  let violations = ref [] in
  let add label vs =
    List.iter (fun v -> violations := (label, Certify.explain v) :: !violations) vs
  in
  (try
     let dag = Dag.of_block blk in
     let options =
       { Optimal.default_options with
         Optimal.lambda;
         Optimal.search_jobs;
         (* Escalate early so the parallel machinery actually gets
            fuzzed on moderately hard cases, not just pathological
            ones. *)
         Optimal.parallel_activation =
           (if search_jobs > 1 then 64
            else Optimal.default_options.Optimal.parallel_activation) }
     in
     let certify label (r : Omega.result) =
       add label (Certify.check machine blk r);
       add (label ^ " semantics") (Certify.check_semantics blk ~order:r.Omega.order)
     in
     let opt = Optimal.schedule ~options machine dag in
     certify "optimal" opt.Optimal.best;
     certify "optimal initial" opt.Optimal.initial;
     let multi, _choice = Optimal.schedule_multi ~options machine dag in
     certify "optimal-multi" multi.Optimal.best;
     let win = Windowed.schedule ~options ~window:4 machine dag in
     certify "windowed" win.Windowed.best;
     let evaluate label order =
       let r = Omega.evaluate machine dag ~order in
       certify label r;
       r
     in
     let list_r = evaluate "list" (List_sched.schedule List_sched.Max_distance dag) in
     let greedy_r = evaluate "greedy" (Baselines.greedy machine dag) in
     let gross_r = evaluate "gross" (Baselines.gross machine dag) in
     (match Optimal.schedule_bounded ~options ~registers:8 machine dag with
      | Ok bounded -> certify "optimal bounded(8)" bounded.Optimal.best
      | Error () -> ());
     (* NOP-count ordering.  The optimal and windowed searches both seed
        from the list schedule, so these hold even when curtailed. *)
     let nops (r : Omega.result) = r.Omega.nops in
     add "ordering"
       (Certify.check_ordering
          [ ("optimal", nops opt.Optimal.best); ("list", nops list_r) ]);
     add "ordering"
       (Certify.check_ordering
          [ ("optimal-multi", nops multi.Optimal.best); ("list", nops list_r) ]);
     add "ordering"
       (Certify.check_ordering
          [ ("windowed", nops win.Windowed.best); ("list", nops list_r) ]);
     (* A completed search is provably optimal: no other scheduler may
        beat it.  (Windowed vs greedy/gross is unordered — both are
        heuristics — so only optimal-vs-each is checked.) *)
     if opt.Optimal.stats.Optimal.completed then
       List.iter
         (fun other ->
           add "ordering"
             (Certify.check_ordering
                [ ("optimal", nops opt.Optimal.best); other ]))
         [ ("windowed", nops win.Windowed.best);
           ("greedy", nops greedy_r);
           ("gross", nops gross_r) ]
   with exn ->
     add "scheduler crash"
       [ Certify.Check_crashed { what = Printexc.to_string exn } ]);
  List.rev !violations

(* One case, single-backend mode (--backend NAME): dispatch through the
   Scheduler registry, certify best and initial, check the outcome
   contract (proved ⟹ best realizes the proof), and cross-check any
   optimality proof against an independent branch-and-bound run of the
   same case.  The portfolio backend cross-checks bnb vs cp internally
   and raises Portfolio.Disagreement — caught below like any scheduler
   crash, so a disagreement shrinks and writes a repro like any other
   failing case. *)

let run_case_backend ~lambda ~backend machine blk =
  let violations = ref [] in
  let add label vs =
    List.iter (fun v -> violations := (label, Certify.explain v) :: !violations) vs
  in
  let bug label what = add label [ Certify.Check_crashed { what } ] in
  (try
     let dag = Dag.of_block blk in
     let options = { Optimal.default_options with Optimal.lambda } in
     let sched name =
       match Scheduler.find name with
       | Some (module B : Scheduler.S) -> B.schedule ~options machine dag
       | None -> invalid_arg ("unknown backend " ^ name)
     in
     let certify label (r : Omega.result) =
       add label (Certify.check machine blk r);
       add (label ^ " semantics")
         (Certify.check_semantics blk ~order:r.Omega.order)
     in
     let o = sched backend in
     certify backend o.Scheduler.best;
     certify (backend ^ " initial") o.Scheduler.initial;
     add "ordering"
       (Certify.check_ordering
          [ (backend, o.Scheduler.best.Omega.nops);
            (backend ^ " initial", o.Scheduler.initial.Omega.nops) ]);
     (match o.Scheduler.proved with
      | Some p when p <> o.Scheduler.best.Omega.nops ->
        bug (backend ^ " proof")
          (Printf.sprintf "proved optimum %d but best schedule has %d NOPs" p
             o.Scheduler.best.Omega.nops)
      | _ -> ());
     if o.Scheduler.completed <> (o.Scheduler.proved <> None) then
       bug (backend ^ " contract")
         (Printf.sprintf "completed %b but proved %s" o.Scheduler.completed
            (match o.Scheduler.proved with
             | None -> "nothing"
             | Some p -> string_of_int p));
     if backend <> "portfolio" && backend <> "bnb" then begin
       (* Differential check against the reference search: whenever both
          sides prove, the optima must match; a curtailed side may never
          hold an incumbent beating the other's proof. *)
       let b = sched "bnb" in
       match (o.Scheduler.proved, b.Scheduler.proved) with
       | Some a, Some c when a <> c ->
         bug "optimum mismatch"
           (Printf.sprintf "%s proved %d, bnb proved %d" backend a c)
       | Some a, None when b.Scheduler.best.Omega.nops < a ->
         bug "optimum mismatch"
           (Printf.sprintf "%s proved %d, curtailed bnb already has %d"
              backend a b.Scheduler.best.Omega.nops)
       | None, Some c when o.Scheduler.best.Omega.nops < c ->
         bug "optimum mismatch"
           (Printf.sprintf "bnb proved %d, curtailed %s already has %d" c
              backend o.Scheduler.best.Omega.nops)
       | _ -> ()
     end
   with exn ->
     add "scheduler crash"
       [ Certify.Check_crashed { what = Printexc.to_string exn } ]);
  List.rev !violations

(* ------------------------------------------------------------------ *)
(* Shrinking: greedily drop whole instructions (references to the
   dropped value become the constant 1), then individual reference
   edges, as long as the case keeps failing.  Both steps strictly
   decrease (length, reference count), so the loop terminates. *)

let cut_ref id op =
  match op with Operand.Ref id' when id' = id -> Operand.Imm 1 | _ -> op

let drop_instruction blk i =
  let tus = Array.to_list (Block.tuples blk) in
  let victim = List.nth tus i in
  let rest = List.filteri (fun j _ -> j <> i) tus in
  let rewired =
    List.map
      (fun (tu : Tuple.t) ->
        Tuple.make ~id:tu.id tu.op (cut_ref victim.Tuple.id tu.a)
          (cut_ref victim.Tuple.id tu.b))
      rest
  in
  match Block.of_tuples rewired with Ok b -> Some b | Error _ -> None

let drop_edges blk i =
  (* Every single-edge cut of instruction [i] (left and/or right). *)
  let tus = Array.to_list (Block.tuples blk) in
  let tu = List.nth tus i in
  let variants =
    (match tu.Tuple.a with
     | Operand.Ref _ -> [ { tu with Tuple.a = Operand.Imm 1 } ]
     | _ -> [])
    @
    match tu.Tuple.b with
    | Operand.Ref _ -> [ { tu with Tuple.b = Operand.Imm 1 } ]
    | _ -> []
  in
  List.filter_map
    (fun tu' ->
      match
        Block.of_tuples
          (List.mapi (fun j old -> if j = i then tu' else old) tus)
      with
      | Ok b -> Some b
      | Error _ -> None)
    variants

let shrink ~run_case machine blk =
  let fails b = run_case machine b <> [] in
  let rec go blk =
    let n = Block.length blk in
    let drops =
      List.filter_map (drop_instruction blk) (List.init n Fun.id)
    in
    match List.find_opt fails drops with
    | Some smaller -> go smaller
    | None -> (
      let cuts = List.concat_map (drop_edges blk) (List.init n Fun.id) in
      match List.find_opt fails cuts with
      | Some smaller -> go smaller
      | None -> blk)
  in
  go blk

(* ------------------------------------------------------------------ *)
(* Repro files (hand-rolled JSON, as in bench/main.ml).               *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let ensure_dir dir =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "fuzz: %s exists and is not a directory" dir)

let write_repro ~dir ~master_seed ~cases ~case ~case_seed machine blk shrunk
    violations =
  ensure_dir dir;
  let path = Filename.concat dir (Printf.sprintf "fuzz-repro-%d.json" case_seed) in
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema\": 2,\n";
  p "  \"master_seed\": %d,\n" master_seed;
  p "  \"cases\": %d,\n" cases;
  p "  \"case\": %d,\n" case;
  p "  \"case_seed\": %d,\n" case_seed;
  p "  \"machine\": \"%s\",\n" (json_escape (Machine.to_text machine));
  p "  \"block\": \"%s\",\n" (json_escape (Block.to_string blk));
  p "  \"shrunk_block\": \"%s\",\n" (json_escape (Block.to_string shrunk));
  p "  \"violations\": [\n";
  List.iteri
    (fun i (label, msg) ->
      p "    { \"scheduler\": \"%s\", \"message\": \"%s\" }%s\n"
        (json_escape label) (json_escape msg)
        (if i = List.length violations - 1 then "" else ","))
    violations;
  p "  ]\n";
  p "}\n";
  close_out oc;
  path

(* ------------------------------------------------------------------ *)

let run seed cases lambda search_jobs machines backend out =
  let search_jobs =
    Pipesched_parallel.Pool.resolve_search_jobs
      (if search_jobs <= 0 then None else Some search_jobs)
  in
  (match backend with
   | "all" -> ()
   | name when Scheduler.find name <> None -> ()
   | name ->
     Format.eprintf "unknown backend %S (have: all, %s)@." name
       (String.concat ", " Scheduler.names);
     exit 2);
  let run_case =
    match backend with
    | "all" -> run_case ~lambda ~search_jobs
    | name -> run_case_backend ~lambda ~backend:name
  in
  let master = Rng.create seed in
  (* Pre-draw per-case seeds so a repro depends only on its case seed,
     not on how many cases ran before it. *)
  let case_seeds = Array.init cases (fun _ -> Rng.bits master) in
  (* With [--machines M], cases draw their machine from a pre-generated
     pool instead of a fresh one each: a small pool makes duplicate
     (machine, block) pairs likely, so the dedup path does real work.
     (Explicit loop: the master RNG is stateful and [Array.init]'s
     evaluation order is unspecified.) *)
  let pool =
    if machines <= 0 then [||]
    else begin
      let a = Array.make machines (Generator.random_machine master) in
      for i = 1 to machines - 1 do
        a.(i) <- Generator.random_machine master
      done;
      a
    end
  in
  let failures = ref 0 in
  (* Verdicts by (machine fingerprint, canonical block key): an
     isomorphic duplicate inherits its representative's verdict instead
     of being re-fuzzed — sound for the same reason the schedule cache
     is (the searches and certifications are isomorphic). *)
  let verdicts : (string, [ `Clean | `Failed of int ]) Hashtbl.t =
    Hashtbl.create (2 * cases)
  in
  let unique = ref 0 in
  Array.iteri
    (fun case case_seed ->
      let rng = Rng.create case_seed in
      let machine =
        if machines <= 0 then Generator.random_machine rng
        else pool.(Rng.int rng machines)
      in
      let params =
        { Generator.statements = 2 + Rng.int rng 10;
          variables = 2 + Rng.int rng 5;
          constants = 1 + Rng.int rng 3 }
      in
      let blk = Generator.block rng params in
      let key =
        Machine.fingerprint machine ^ "\x00"
        ^ (Canonical.of_block blk).Canonical.key
      in
      match Hashtbl.find_opt verdicts key with
      | Some `Clean -> ()
      | Some (`Failed rep_seed) ->
        incr failures;
        Printf.printf
          "case %d/%d (seed %d): FAILED (duplicate of failing seed %d)\n%!"
          (case + 1) cases case_seed rep_seed
      | None -> (
        incr unique;
        match run_case machine blk with
        | [] -> Hashtbl.add verdicts key `Clean
        | violations ->
          Hashtbl.add verdicts key (`Failed case_seed);
          incr failures;
          let shrunk = shrink ~run_case machine blk in
          let shrunk_violations = run_case machine shrunk in
          let reported =
            if shrunk_violations = [] then violations else shrunk_violations
          in
          let path =
            write_repro ~dir:out ~master_seed:seed ~cases ~case ~case_seed
              machine blk shrunk reported
          in
          Printf.printf
            "case %d/%d (seed %d): FAILED, %d violation(s), repro %s\n%!"
            (case + 1) cases case_seed
            (List.length reported) path;
          List.iter
            (fun (label, msg) -> Printf.printf "  [%s] %s\n%!" label msg)
            reported))
    case_seeds;
  let dup_pct =
    if cases = 0 then 0.0
    else 100.0 *. float_of_int (cases - !unique) /. float_of_int cases
  in
  if !failures = 0 then begin
    Printf.printf
      "fuzz: %d cases clean (seed %d, lambda %d, %d unique / %.1f%% dedup)\n"
      cases seed lambda !unique dup_pct;
    0
  end
  else begin
    Printf.printf
      "fuzz: %d of %d cases FAILED (seed %d, %d unique / %.1f%% dedup)\n"
      !failures cases seed !unique dup_pct;
    1
  end

open Cmdliner

let seed =
  Arg.(
    value & opt int 1990
    & info [ "seed" ] ~doc:"Master seed; per-case seeds derive from it.")

let cases =
  Arg.(value & opt int 500 & info [ "cases"; "n" ] ~doc:"Cases to run.")

let lambda =
  Arg.(
    value & opt int 10_000
    & info [ "lambda" ] ~doc:"Curtail point per search (max Omega calls).")

let search_jobs =
  Arg.(
    value & opt int 0
    & info [ "search-jobs" ]
        ~env:(Cmd.Env.info "PIPESCHED_SEARCH_JOBS")
        ~doc:
          "Worker domains inside each optimal search (0 = auto: \
           \\$(b,PIPESCHED_SEARCH_JOBS) or 1).  At > 1 the parallel \
           branch-and-bound path is exercised (with an early escalation \
           threshold) and its results certified like any other.")

let machines =
  Arg.(
    value & opt int 0
    & info [ "machines" ] ~docv:"M"
        ~doc:
          "Draw each case's machine from a pool of $(docv) pre-generated \
           random machines instead of a fresh machine per case (0 = \
           fresh).  A small pool makes duplicate (machine, block) pairs \
           likely, so the canonical-form dedup answers them from the \
           earlier verdict.")

let backend =
  Arg.(
    value & opt string "all"
    & info [ "backend" ]
        ~doc:
          "Which scheduler(s) to fuzz: $(b,all) (default; every scheduler \
           differentially, as before) or one Scheduler registry name — \
           $(b,bnb), $(b,cp), $(b,portfolio), $(b,windowed), $(b,list).  \
           Single-backend mode certifies the backend's schedules, checks \
           its outcome contract, and cross-checks any optimality proof \
           against an independent branch-and-bound run ($(b,portfolio) \
           cross-checks bnb vs cp internally on every case).")

let out =
  Arg.(
    value & opt string "fuzz-repro"
    & info [ "out" ]
        ~doc:
          "Directory for fuzz-repro-<seed>.json files (created on demand, \
           only when a case fails).")

let cmd =
  Cmd.v
    (Cmd.info "pipesched-fuzz"
       ~doc:
         "differentially fuzz every scheduler against the independent \
          certifier")
    Term.(
      const run $ seed $ cases $ lambda $ search_jobs $ machines $ backend
      $ out)

let () = exit (Cmd.eval' cmd)
