(* The scheduling daemon: line-delimited JSON requests over stdin/stdout
   and (optionally) a Unix-domain socket, answered by a team of Pool
   worker domains sharing one LRU schedule cache.

   Threading model: I/O (the stdin reader, the socket acceptor, one
   reader per connection) runs on systhreads, which park in blocking
   calls without occupying a domain; compute runs on
   [Pool.team ~jobs] worker domains that drain a shared job queue.
   Responses go back through a per-channel mutex, so concurrent workers
   never interleave bytes on one stream.

   Shutdown: stdin EOF or SIGTERM stops intake (the listening socket is
   closed), the workers drain every queued job, and the process exits 0.
   In-flight connection readers are abandoned at exit — their requests
   were either served or never fully submitted. *)

module Pool = Pipesched_parallel.Pool
module Server = Pipesched_serve.Server

type job = { line : string; write : string -> unit }

type state = {
  server : Server.t;
  queue : job Queue.t;
  qmutex : Mutex.t;
  qcond : Condition.t;
  mutable draining : bool; (* no new jobs will be accepted *)
  mutable listen_fd : Unix.file_descr option;
  served : int Atomic.t;
}

let submit st job =
  Mutex.lock st.qmutex;
  let accepted = not st.draining in
  if accepted then begin
    Queue.push job st.queue;
    Condition.signal st.qcond
  end;
  Mutex.unlock st.qmutex;
  accepted

let begin_shutdown st =
  Mutex.lock st.qmutex;
  st.draining <- true;
  Condition.broadcast st.qcond;
  let fd = st.listen_fd in
  st.listen_fd <- None;
  Mutex.unlock st.qmutex;
  (* Closing the listener kicks the acceptor thread out of accept(2). *)
  match fd with Some fd -> (try Unix.close fd with Unix.Unix_error _ -> ()) | None -> ()

(* Worker domain: drain jobs until the queue is empty *and* intake has
   stopped. *)
let worker st _rank =
  let rec loop () =
    Mutex.lock st.qmutex;
    while Queue.is_empty st.queue && not st.draining do
      Condition.wait st.qcond st.qmutex
    done;
    match Queue.take_opt st.queue with
    | Some job ->
      Mutex.unlock st.qmutex;
      let response = Server.handle_line st.server job.line in
      job.write response;
      Atomic.incr st.served;
      loop ()
    | None ->
      (* Empty and draining: done. *)
      Mutex.unlock st.qmutex
  in
  loop ()

(* A writer that frames one response per line under [mutex], ignoring
   write failures (the peer may have hung up before its answer). *)
let line_writer mutex oc response =
  Mutex.lock mutex;
  (try
     output_string oc response;
     output_char oc '\n';
     flush oc
   with Sys_error _ -> ());
  Mutex.unlock mutex

let reader_loop st ic write =
  let rec go () =
    match input_line ic with
    | "" -> go ()
    | line ->
      ignore (submit st { line; write });
      go ()
    | exception End_of_file -> ()
    | exception Sys_error _ -> ()
  in
  go ()

let stdin_reader st () =
  let stdout_mutex = Mutex.create () in
  reader_loop st stdin (line_writer stdout_mutex stdout);
  (* stdin EOF is the daemon's stop signal. *)
  begin_shutdown st

let connection_thread st fd () =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let mutex = Mutex.create () in
  reader_loop st ic (line_writer mutex oc);
  try Unix.close fd with Unix.Unix_error _ -> ()

let acceptor st listen_fd () =
  let rec go () =
    match Unix.accept ~cloexec:true listen_fd with
    | fd, _ ->
      ignore (Thread.create (connection_thread st fd) ());
      go ()
    | exception Unix.Unix_error ((EBADF | EINVAL), _, _) -> () (* closed *)
    | exception Unix.Unix_error (EINTR, _, _) -> go ()
  in
  go ()

let run socket_path cache_capacity certify jobs lambda deadline_ms =
  let server =
    Server.create ~cache_capacity ~certify
      ?lambda
      ?deadline_ms
      ()
  in
  let st =
    {
      server;
      queue = Queue.create ();
      qmutex = Mutex.create ();
      qcond = Condition.create ();
      draining = false;
      listen_fd = None;
      served = Atomic.make 0;
    }
  in
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (* Every thread of this process parks in blocking calls (cond waits,
     read(2), accept(2)), so an asynchronous [Signal_handle] would never
     reach a safe point.  Instead block the shutdown signals everywhere
     and give them a dedicated watcher thread that receives them
     synchronously. *)
  ignore (Thread.sigmask SIG_BLOCK [ Sys.sigterm; Sys.sigint ]);
  ignore
    (Thread.create
       (fun () ->
         let (_ : int) = Thread.wait_signal [ Sys.sigterm; Sys.sigint ] in
         begin_shutdown st)
       ());
  (match socket_path with
  | None -> ()
  | Some path ->
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    let fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
    Unix.bind fd (ADDR_UNIX path);
    Unix.listen fd 64;
    st.listen_fd <- Some fd;
    ignore (Thread.create (acceptor st fd) ()));
  ignore (Thread.create (stdin_reader st) ());
  let jobs = Pool.resolve_jobs jobs in
  Pool.team ~jobs (fun rank -> worker st rank);
  (match socket_path with
  | None -> ()
  | Some path -> ( try Unix.unlink path with Unix.Unix_error _ -> ()));
  Printf.eprintf
    "pipesched_server: served %d request(s), cache hits %d / misses %d\n%!"
    (Atomic.get st.served) (Server.cache_hits server)
    (Server.cache_misses server);
  0

open Cmdliner

let socket =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:
          "Also listen on a Unix-domain stream socket at $(docv) (stdin is \
           always served).  The socket file is created at startup and \
           removed on exit.")

let cache_capacity =
  Arg.(
    value & opt int 4096
    & info [ "cache-capacity" ] ~docv:"N"
        ~doc:
          "Schedule-cache capacity in entries (LRU eviction beyond it; 0 \
           disables caching).")

let certify =
  Arg.(
    value & flag
    & info [ "certify" ]
        ~doc:
          "Run the independent certifier on every fresh solve before it \
           may enter the cache; a violation fails that request instead of \
           poisoning the cache.")

let jobs =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains answering requests concurrently (default: \
           $(b,PIPESCHED_JOBS) or the machine's core count).")

let lambda =
  Arg.(
    value
    & opt (some int) None
    & info [ "lambda" ] ~docv:"N"
        ~doc:
          "Default per-request Omega-call budget (requests may override \
           with a \"lambda\" field).")

let deadline_ms =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Default per-request wall-clock deadline for the anytime search \
           (requests may override with a \"deadline_ms\" field).")

let cmd =
  Cmd.v
    (Cmd.info "pipesched_server"
       ~doc:
         "long-lived scheduling service: line-delimited JSON requests on \
          stdin and an optional Unix socket, duplicate blocks answered \
          from a canonical-form schedule cache")
    Term.(
      const run $ socket $ cache_capacity $ certify $ jobs $ lambda
      $ deadline_ms)

let () = exit (Cmd.eval' cmd)
