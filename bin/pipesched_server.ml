(* The scheduling daemon: line-delimited JSON requests over stdin/stdout
   and (optionally) a Unix-domain socket, answered by a team of
   supervised worker domains sharing one LRU schedule cache.

   Threading model: I/O (the stdin reader, the socket acceptor, one
   reader per connection) runs on systhreads, which park in blocking
   calls without occupying a domain; compute runs on [Daemon.supervise]
   worker domains that drain a shared job queue and are respawned if an
   uncontained exception kills one.  Responses go back through a
   per-channel mutex, so concurrent workers never interleave bytes on
   one stream.

   The queue/admission/drain/listener state machine lives in
   [Pipesched_serve.Daemon] (unit-tested there); this binary is the I/O
   plumbing around it.

   Shutdown: stdin EOF or SIGTERM stops intake (the listening socket is
   closed), requests arriving after that are answered with an explicit
   "shutting down" error, the workers drain every queued job, and the
   process exits 0. *)

module Pool = Pipesched_parallel.Pool
module Fault = Pipesched_prelude.Fault
module Server = Pipesched_serve.Server
module Daemon = Pipesched_serve.Daemon

(* A writer that frames one response per line under [mutex], ignoring
   write failures (the peer may have hung up before its answer — with
   SIGPIPE ignored that surfaces as EPIPE here, not as process death). *)
let line_writer mutex oc response =
  Mutex.lock mutex;
  (try
     output_string oc response;
     output_char oc '\n';
     flush oc
   with Sys_error _ | Unix.Unix_error _ -> ());
  Mutex.unlock mutex

let stdin_reader st () =
  let stdout_mutex = Mutex.create () in
  Daemon.reader_loop st stdin (line_writer stdout_mutex stdout);
  (* stdin EOF is the daemon's stop signal. *)
  Daemon.begin_shutdown st

let connection_thread st fd () =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let mutex = Mutex.create () in
  (* reader_loop returns only after every job this connection submitted
     has been answered, so the close below cannot race a worker's
     response write. *)
  Daemon.reader_loop st ic (line_writer mutex oc);
  try Unix.close fd with Unix.Unix_error _ -> ()

let acceptor st listen_fd () =
  let accepted = ref 0 in
  let rec go () =
    match Unix.accept ~cloexec:true listen_fd with
    | fd, _ ->
      incr accepted;
      (* Chaos site: an armed [accept] fault hangs up on the fresh
         connection immediately — the client sees a clean EOF and must
         cope (the load client retries on a fresh connection). *)
      if Fault.fire Fault.Accept ~key:(string_of_int !accepted) then (
        (try Unix.close fd with Unix.Unix_error _ -> ());
        go ())
      else begin
        ignore (Thread.create (connection_thread st fd) ());
        go ()
      end
    | exception Unix.Unix_error ((EBADF | EINVAL), _, _) -> () (* closed *)
    | exception Unix.Unix_error (EINTR, _, _) -> go ()
  in
  go ()

let run socket_path cache_capacity certify jobs lambda deadline_ms backend
    max_queue max_inflight degrade faults =
  if Pipesched_core.Scheduler.find backend = None then begin
    Printf.eprintf "pipesched_server: unknown backend %S (have: %s)\n%!"
      backend
      (String.concat ", " Pipesched_core.Scheduler.names);
    124
  end
  else
  match Fault.arm_spec (Option.value ~default:"" faults) with
  | Error msg ->
    Printf.eprintf "pipesched_server: --faults: %s\n%!" msg;
    124
  | Ok () ->
    let server =
      Server.create ~cache_capacity ~certify ~degrade
        ?lambda
        ?deadline_ms
        ~backend
        ()
    in
    let st = Daemon.create ~max_queue ~max_inflight ~degrade server in
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    (* Every thread of this process parks in blocking calls (cond waits,
       read(2), accept(2)), so an asynchronous [Signal_handle] would never
       reach a safe point.  Instead block the shutdown signals everywhere
       and give them a dedicated watcher thread that receives them
       synchronously. *)
    ignore (Thread.sigmask SIG_BLOCK [ Sys.sigterm; Sys.sigint ]);
    ignore
      (Thread.create
         (fun () ->
           let (_ : int) = Thread.wait_signal [ Sys.sigterm; Sys.sigint ] in
           Daemon.begin_shutdown st)
         ());
    (match socket_path with
    | None -> ()
    | Some path ->
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
      Unix.bind fd (ADDR_UNIX path);
      Unix.listen fd 64;
      (* Publication and shutdown share the daemon's mutex: if a SIGTERM
         already started draining, [install_listener] closes the fd and
         no acceptor is spawned. *)
      if Daemon.install_listener st fd then
        ignore (Thread.create (acceptor st fd) ()));
    ignore (Thread.create (stdin_reader st) ());
    let jobs = Pool.resolve_jobs jobs in
    Daemon.supervise st ~jobs;
    (match socket_path with
    | None -> ()
    | Some path -> ( try Unix.unlink path with Unix.Unix_error _ -> ()));
    Printf.eprintf
      "pipesched_server: served %d request(s), cache hits %d / misses %d, \
       shed %d, degraded %d, contained %d, respawns %d\n\
       %!"
      (Daemon.served st) (Server.cache_hits server)
      (Server.cache_misses server) (Daemon.shed st)
      (Server.degraded_served server)
      (Server.contained server + Daemon.write_contained st)
      (Daemon.respawns st);
    0

open Cmdliner

let socket =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:
          "Also listen on a Unix-domain stream socket at $(docv) (stdin is \
           always served).  The socket file is created at startup and \
           removed on exit.")

let cache_capacity =
  Arg.(
    value & opt int 4096
    & info [ "cache-capacity" ] ~docv:"N"
        ~doc:
          "Schedule-cache capacity in entries (LRU eviction beyond it; 0 \
           disables caching).")

let certify =
  Arg.(
    value & flag
    & info [ "certify" ]
        ~doc:
          "Run the independent certifier on every fresh solve before it \
           may enter the cache; a violation fails that request instead of \
           poisoning the cache.")

let jobs =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains answering requests concurrently (default: \
           $(b,PIPESCHED_JOBS) or the machine's core count).")

let lambda =
  Arg.(
    value
    & opt (some int) None
    & info [ "lambda" ] ~docv:"N"
        ~doc:
          "Default per-request Omega-call budget (requests may override \
           with a \"lambda\" field).")

let deadline_ms =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Default per-request wall-clock deadline for the anytime search \
           (requests may override with a \"deadline_ms\" field).")

let backend =
  Arg.(
    value & opt string "bnb"
    & info [ "backend" ] ~docv:"NAME"
        ~doc:
          "Default scheduler backend: $(b,bnb) (branch-and-bound, \
           default), $(b,cp) (propagation/learning), $(b,portfolio) \
           (both racing), $(b,windowed), or $(b,list).  Requests may \
           override with a \"backend\" field; the backend is part of \
           the schedule-cache key.")

let max_queue =
  Arg.(
    value & opt int 0
    & info [ "max-queue" ] ~docv:"N"
        ~doc:
          "Bound the job queue at $(docv) waiting requests; beyond it, \
           admission control sheds with an \"overloaded\" refusal (or a \
           degraded answer under $(b,--degrade)) carrying a \
           retry_after_ms hint.  0 (default) = unbounded.")

let max_inflight =
  Arg.(
    value & opt int 0
    & info [ "max-inflight" ] ~docv:"N"
        ~doc:
          "Bound queued plus executing requests at $(docv); same shedding \
           behavior as $(b,--max-queue).  0 (default) = unbounded.")

let degrade =
  Arg.(
    value & flag
    & info [ "degrade" ]
        ~doc:
          "Graceful degradation: answer requests that would be shed (and \
           requests whose solve fails) with the certified list scheduler \
           instead of an error — a legal schedule marked \
           \"degraded\": true, with no optimality claim.")

let faults =
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ] ~docv:"SPEC"
        ~env:(Cmd.Env.info "PIPESCHED_FAULTS")
        ~doc:
          "Arm deterministic chaos injection: comma-separated \
           site:prob:seed triples over sites solver, cache_insert, \
           write_response, accept (e.g. \
           \"solver:0.05:1,write_response:0.02:7\").  Fault verdicts are \
           a pure function of (spec, request bytes), so a chaos run \
           replays exactly.")

let cmd =
  Cmd.v
    (Cmd.info "pipesched_server"
       ~doc:
         "long-lived scheduling service: line-delimited JSON requests on \
          stdin and an optional Unix socket, duplicate blocks answered \
          from a canonical-form schedule cache")
    Term.(
      const run $ socket $ cache_capacity $ certify $ jobs $ lambda
      $ deadline_ms $ backend $ max_queue $ max_inflight $ degrade $ faults)

let () = exit (Cmd.eval' cmd)
