(* The pipesched command-line compiler driver: source text in, optimally
   scheduled (and register-allocated) code out. *)

open Pipesched_ir
open Pipesched_machine
open Pipesched_sched
open Pipesched_core
module Budget = Pipesched_prelude.Budget
module Frontend = Pipesched_frontend
module Regalloc = Pipesched_regalloc
module Certify = Pipesched_verify.Certify

(* Print certification violations and fail, or stay silent. *)
let enforce_certified label violations =
  if not (Certify.certified violations) then begin
    Format.eprintf "certification FAILED (%s):@." label;
    List.iter
      (fun v -> Format.eprintf "  %s@." (Certify.explain v))
      violations;
    exit 1
  end

type scheduler = Optimal_s | Optimal_multi | List_s | Greedy | Gross | Source

let scheduler_conv =
  let parse = function
    | "optimal" -> Ok Optimal_s
    | "optimal-multi" -> Ok Optimal_multi
    | "list" -> Ok List_s
    | "greedy" -> Ok Greedy
    | "gross" -> Ok Gross
    | "source" -> Ok Source
    | s -> Error (`Msg (Printf.sprintf "unknown scheduler %S" s))
  in
  let print fmt s =
    Format.pp_print_string fmt
      (match s with
       | Optimal_s -> "optimal"
       | Optimal_multi -> "optimal-multi"
       | List_s -> "list"
       | Greedy -> "greedy"
       | Gross -> "gross"
       | Source -> "source")
  in
  Cmdliner.Arg.conv (parse, print)

let machine_conv =
  let parse s =
    match Machine.Presets.find s with
    | Some m -> Ok m
    | None ->
      Error
        (`Msg
           (Printf.sprintf "unknown machine %S (have: %s)" s
              (String.concat ", "
                 (List.map fst Machine.Presets.all))))
  in
  let print fmt m = Format.pp_print_string fmt (Machine.name m) in
  Cmdliner.Arg.conv (parse, print)

let read_input file expr =
  match (file, expr) with
  | _, Some src -> src
  | Some "-", _ | None, None ->
    In_channel.input_all In_channel.stdin
  | Some f, _ -> In_channel.with_open_text f In_channel.input_all

let run file expr machine machine_file sched backend lambda deadline_ms
    no_memo memo_capacity search_jobs registers optimize tuples_in certify
    show_tuples show_asm show_tables show_timeline show_dot show_explain =
  try
    let backend_module =
      (* [--backend] picks the search engine behind [--scheduler optimal];
         resolve it early so a typo fails before any work. *)
      match Scheduler.find backend with
      | Some b -> b
      | None ->
        Format.eprintf "unknown backend %S (have: %s)@." backend
          (String.concat ", " Scheduler.names);
        exit 2
    in
    let options =
      { Optimal.default_options with
        Optimal.lambda;
        Optimal.deadline_s =
          Option.map (fun ms -> float_of_int ms /. 1000.0) deadline_ms;
        Optimal.memo =
          { Optimal.default_memo with
            Optimal.memo_enabled = not no_memo;
            Optimal.memo_capacity };
        Optimal.search_jobs =
          Pipesched_parallel.Pool.resolve_search_jobs
            (if search_jobs <= 0 then None else Some search_jobs) }
    in
    let machine =
      match machine_file with
      | None -> machine
      | Some path -> (
        match
          Machine.parse (In_channel.with_open_text path In_channel.input_all)
        with
        | Ok m -> m
        | Error (line, msg) ->
          Format.eprintf "%s:%d: %s@." path line msg;
          exit 2)
    in
    (match Machine.validate machine with
     | [] -> ()
     | diagnostics ->
       Format.eprintf "invalid machine description %S:@."
         (Machine.name machine);
       List.iter
         (fun d ->
           Format.eprintf "  %s@." (Machine.diagnostic_to_string d))
         diagnostics;
       exit 2);
    let src = read_input file expr in
    if tuples_in then begin
      (* Input is tuple-block text (e.g. from pipesched-synthgen). *)
      match Block.parse src with
      | Error (line, msg) ->
        Format.eprintf "tuple input, line %d: %s@." line msg;
        exit 1
      | Ok blk ->
        let dag = Dag.of_block blk in
        let module B = (val backend_module : Scheduler.S) in
        let o = B.schedule ~options machine dag in
        if certify then begin
          (* Hand-written tuple blocks need not be interpretable, so the
             semantic check is reserved for frontend-compiled input. *)
          enforce_certified (B.name ^ " result")
            (Certify.check machine blk o.Scheduler.best);
          enforce_certified "initial list schedule"
            (Certify.check machine blk o.Scheduler.initial);
          enforce_certified (B.name ^ " <= list")
            (Certify.check_ordering
               [ (B.name, o.Scheduler.best.Omega.nops);
                 ("list", o.Scheduler.initial.Omega.nops) ])
        end;
        Format.printf
          "%d instructions: list %d NOPs, %s %d NOPs (%s)@."
          (Block.length blk) o.Scheduler.initial.Omega.nops B.name
          o.Scheduler.best.Omega.nops
          (if o.Scheduler.completed then "proved"
           else
             match o.Scheduler.status with
             | Budget.Complete -> "heuristic"
             | s -> "curtailed: " ^ Budget.status_to_string s);
        if show_timeline then
          Format.printf "@.%s@."
            (Timeline.render machine dag o.Scheduler.best);
        exit 0
    end;
    let program = Frontend.Parser.parse src in
    if not (Frontend.Ast.straight_line program) then begin
      (* Control flow: the whole-program pipeline. *)
      let module Cfl = Pipesched_cflow in
      let cfg = Cfl.Cfg.merge_chains (Cfl.Lower.lower ~optimize program) in
      let cfg = if optimize then Cfl.Cfg.optimize_blocks cfg else cfg in
      let s = Cfl.Schedule.schedule ~options machine cfg in
      if show_tuples then Format.printf "%a@." Cfl.Cfg.pp cfg;
      Format.printf "%d blocks, %d instructions, %d static NOPs@."
        (Cfl.Cfg.length cfg)
        (Cfl.Cfg.instruction_count cfg)
        s.Cfl.Schedule.total_nops;
      match Cfl.Emit.emit ~registers s with
      | Ok text ->
        if show_asm then Format.printf "@.%s@." text;
        exit 0
      | Error (node, pos, demand) ->
        Format.eprintf
          "error: register pressure %d at position %d of block %d exceeds \
           %d@."
          demand pos node registers;
        exit 1
    end;
    let blk = Frontend.Compile.compile ~optimize src in
    let dag = Dag.of_block blk in
    if show_tables then Machine.pp_tables Format.std_formatter machine;
    if show_tuples then
      Format.printf "tuples:@.%a@.@." Block.pp blk;
    let describe label (r : Omega.result) =
      Format.printf "%s: %d instructions, %d NOPs@." label
        (Array.length r.Omega.order) r.Omega.nops
    in
    let result, ordering =
      match sched with
      | Source ->
        ( Omega.evaluate machine dag
            ~order:(Omega.identity_order (Block.length blk)),
          [] )
      | List_s ->
        ( Omega.evaluate machine dag
            ~order:(List_sched.schedule List_sched.Max_distance dag),
          [] )
      | Greedy ->
        (Omega.evaluate machine dag ~order:(Baselines.greedy machine dag), [])
      | Gross ->
        (Omega.evaluate machine dag ~order:(Baselines.gross machine dag), [])
      | Optimal_s when backend <> "bnb" ->
        let module B = (val backend_module : Scheduler.S) in
        let o = B.schedule ~options machine dag in
        describe "initial (list) schedule" o.Scheduler.initial;
        Format.printf "search (%s): %d calls, %s@." B.name o.Scheduler.calls
          (if o.Scheduler.completed then "provably optimal"
           else
             match o.Scheduler.status with
             | Budget.Complete -> "heuristic (no optimality proof)"
             | s ->
               Printf.sprintf "curtailed: %s (possibly suboptimal)"
                 (Budget.status_to_string s));
        ( o.Scheduler.best,
          [ (B.name, o.Scheduler.best.Omega.nops);
            ("list", o.Scheduler.initial.Omega.nops) ] )
      | Optimal_s ->
        let o = Optimal.schedule ~options machine dag in
        describe "initial (list) schedule" o.Optimal.initial;
        Format.printf
          "search: %d omega calls, %d complete schedules, %s@."
          o.Optimal.stats.Optimal.omega_calls
          o.Optimal.stats.Optimal.schedules_completed
          (match o.Optimal.stats.Optimal.status with
           | Budget.Complete -> "provably optimal"
           | s ->
             Printf.sprintf "curtailed: %s (possibly suboptimal)"
               (Budget.status_to_string s));
        ( o.Optimal.best,
          [ ("optimal", o.Optimal.best.Omega.nops);
            ("list", o.Optimal.initial.Omega.nops) ] )
      | Optimal_multi ->
        let o, _choice = Optimal.schedule_multi ~options machine dag in
        describe "initial (list) schedule" o.Optimal.initial;
        Format.printf
          "search: %d omega calls, %s@."
          o.Optimal.stats.Optimal.omega_calls
          (match o.Optimal.stats.Optimal.status with
           | Budget.Complete -> "provably optimal"
           | s ->
             Printf.sprintf "curtailed: %s (possibly suboptimal)"
               (Budget.status_to_string s));
        ( o.Optimal.best,
          [ ("optimal-multi", o.Optimal.best.Omega.nops);
            ("list", o.Optimal.initial.Omega.nops) ] )
    in
    describe "final schedule" result;
    if certify then begin
      enforce_certified "schedule constraints"
        (Certify.check machine blk result);
      enforce_certified "scheduler ordering" (Certify.check_ordering ordering);
      enforce_certified "semantic equivalence"
        (Certify.check_semantics blk ~order:result.Omega.order);
      Format.printf "certified: constraints, ordering, semantics@."
    end;
    if show_explain then begin
      let text = Omega.explain_to_string machine dag result in
      if text = "" then Format.printf "no stalls to explain@."
      else Format.printf "@.%s@." text
    end;
    if show_timeline then
      Format.printf "@.%s@." (Timeline.render machine dag result);
    if show_dot then Format.printf "%s@." (Dag.to_dot dag);
    let scheduled = Block.permute blk result.Omega.order in
    if show_asm then begin
      let alloc =
        match Regalloc.Alloc.allocate scheduled ~registers with
        | Ok a -> a
        | Error (pos, demand) ->
          (match Regalloc.Alloc.rematerialize scheduled ~registers with
           | Some _fixed ->
             Format.eprintf
               "note: pressure %d at position %d exceeded %d registers; \
                re-materialization would fix it, but the schedule would \
                need re-running — increase --registers instead@."
               demand pos registers;
             exit 1
           | None ->
             Format.eprintf
               "error: register pressure %d at position %d exceeds %d and \
                cannot be re-materialized away@."
               demand pos registers;
             exit 1)
      in
      Format.printf "@.assembly (%d registers used):@.%s@."
        (Regalloc.Alloc.registers_used alloc)
        (Regalloc.Codegen.emit scheduled ~eta:result.Omega.eta ~alloc)
    end;
    0
  with
  | Frontend.Parser.Error msg ->
    Format.eprintf "parse error: %s@." msg;
    1
  | Frontend.Lexer.Error (msg, pos) ->
    Format.eprintf "lex error at offset %d: %s@." pos msg;
    1

open Cmdliner

let file =
  Arg.(
    value
    & pos 0 (some string) None
    & info [] ~docv:"FILE" ~doc:"Source file ('-' or absent: stdin).")

let expr =
  Arg.(
    value
    & opt (some string) None
    & info [ "e"; "expr" ] ~doc:"Inline source text instead of a file.")

let machine =
  Arg.(
    value
    & opt machine_conv Machine.Presets.simulation
    & info [ "machine"; "m" ] ~doc:"Target machine preset.")

let machine_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "machine-file" ]
        ~doc:"Load the target machine from a description file.")

let tuples_in =
  Arg.(
    value & flag
    & info [ "tuples-in" ]
        ~doc:"Treat the input as tuple-block text instead of source code.")

let sched =
  Arg.(
    value
    & opt scheduler_conv Optimal_s
    & info [ "scheduler"; "s" ]
        ~doc:"Scheduler: optimal, optimal-multi, list, greedy, gross, source.")

let backend =
  Arg.(
    value & opt string "bnb"
    & info [ "backend" ]
        ~doc:
          "Search backend behind $(b,--scheduler optimal): $(b,bnb) (the \
           paper's branch-and-bound), $(b,cp) (the propagation/learning \
           solver over issue-slot variables), or $(b,portfolio) (both \
           racing on two domains, first optimality proof wins).  Any \
           registered backend name is accepted.")

let lambda =
  Arg.(
    value & opt int 100_000
    & info [ "lambda" ] ~doc:"Curtail point (max omega calls).")

let deadline_ms =
  Arg.(
    value
    & opt (some int) None
    & info [ "deadline-ms" ]
        ~env:(Cmd.Env.info "PIPESCHED_DEADLINE_MS")
        ~doc:
          "Wall-clock deadline for the search in milliseconds (anytime \
           mode): on expiry the best schedule found so far is emitted \
           and the status reads Curtailed_deadline.  Unset: the search \
           is bounded by --lambda only and is fully deterministic.")

let no_memo =
  Arg.(
    value & flag
    & info [ "no-memo" ]
        ~doc:
          "Disable the dominance-memoization extension.  The memo never \
           changes the schedule found, only the search effort.")

let memo_capacity =
  Arg.(
    value & opt int 4_096
    & info [ "memo-capacity" ]
        ~doc:
          "Capacity (entries, rounded up to a power of two) of the \
           dominance memo table.")

let search_jobs =
  Arg.(
    value & opt int 0
    & info [ "search-jobs" ]
        ~env:(Cmd.Env.info "PIPESCHED_SEARCH_JOBS")
        ~doc:
          "Worker domains for the branch-and-bound search itself (0 = \
           auto: \\$(b,PIPESCHED_SEARCH_JOBS) or 1, the serial search).  \
           The schedule and NOP count are identical at any value; only \
           wall-clock time and the search counters change.")

let registers =
  Arg.(
    value & opt int 16
    & info [ "registers"; "r" ] ~doc:"Register-file size for allocation.")

let optimize =
  Arg.(
    value & opt bool true
    & info [ "optimize" ] ~doc:"Run front-end optimizations.")

let certify =
  Arg.(
    value & flag
    & info [ "certify" ]
        ~doc:
          "Re-check the final schedule with the independent certifier \
           (dependence, conflict and legality constraints; claimed NOP \
           counts; scheduler-quality ordering; semantic equivalence for \
           compiled source).  Any violation is printed and the exit \
           status is 1.")

let show_tuples =
  Arg.(value & flag & info [ "tuples" ] ~doc:"Print the tuple IR.")

let show_asm =
  Arg.(value & flag & info [ "asm" ] ~doc:"Print allocated assembly.")

let show_tables =
  Arg.(value & flag & info [ "tables" ] ~doc:"Print the machine tables.")

let show_timeline =
  Arg.(
    value & flag
    & info [ "timeline" ] ~doc:"Print the pipeline-occupancy timeline.")

let show_dot =
  Arg.(
    value & flag
    & info [ "dot" ] ~doc:"Print the dependence DAG in Graphviz format.")

let show_explain =
  Arg.(
    value & flag
    & info [ "explain" ]
        ~doc:"Explain every remaining stall (which constraint binds).")

let cmd =
  Cmd.v
    (Cmd.info "pipesched"
       ~doc:"optimally schedule a basic block for pipelined machines")
    Term.(
      const run $ file $ expr $ machine $ machine_file $ sched $ backend
      $ lambda $ deadline_ms $ no_memo $ memo_capacity $ search_jobs
      $ registers $ optimize $ tuples_in $ certify $ show_tuples $ show_asm
      $ show_tables $ show_timeline $ show_dot $ show_explain)

let () = exit (Cmd.eval' cmd)
