(* Emit synthetic benchmark basic blocks (§5.2). *)

open Pipesched_ir
module Generator = Pipesched_synth.Generator
module Schedule = Pipesched_synth.Schedule
module Frequency = Pipesched_synth.Frequency
module Rng = Pipesched_prelude.Rng

(* Blocks are printed (and flushed) as they are produced — the whole
   corpus never lives in memory, so `--mix -n 1000000 | head` starts
   instantly and a consumer pipeline is fed continuously.

   Two regimes:
   - fixed-parameter mode draws everything from one sequential RNG, so
     the byte stream for a given seed is stable (CI smokes depend on it);
   - `--mix` mode seeds each block independently from its corpus index
     via [Schedule.seed_at] — the same per-index identity the mega study
     uses — so `--start` can slice any window of the corpus and
     `--start A -n K` ++ `--start A+K -n M` equals `--start A -n K+M`
     byte for byte. *)
let run count seed start statements variables constants mix show_source
    optimize mul_heavy =
  if (not mix) && start <> 0 then begin
    Format.eprintf
      "--start requires --mix (fixed-parameter blocks have no \
       per-index identity)@.";
    exit 2
  end;
  let freq = if mul_heavy then Frequency.mul_heavy else Frequency.default in
  let emit i params prog =
    Format.printf "# block %d (statements=%d variables=%d constants=%d)@." i
      params.Generator.statements params.Generator.variables
      params.Generator.constants;
    if show_source then
      Format.printf "%a@." Pipesched_frontend.Ast.pp_program prog;
    let blk = Pipesched_frontend.Compile.compile_program ~optimize prog in
    Format.printf "%a@.@." Block.pp blk;
    Format.print_flush ()
  in
  if mix then
    (* Mirrors [Generator.of_seed] (params then program off one fresh
       RNG per index) but keeps the source program around for
       [--source]. *)
    for i = start to start + count - 1 do
      let rng = Rng.create (Schedule.seed_at ~seed i) in
      let params = Generator.sample_params rng in
      emit i params (Generator.program ~freq rng params)
    done
  else begin
    let rng = Rng.create seed in
    let params = { Generator.statements; variables; constants } in
    for i = 1 to count do
      emit i params (Generator.program ~freq rng params)
    done
  end;
  0

open Cmdliner

let count =
  Arg.(value & opt int 1 & info [ "count"; "n" ] ~doc:"Blocks to generate.")

let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.")

let start =
  Arg.(
    value & opt int 0
    & info [ "start" ]
        ~doc:
          "First corpus index to emit (requires $(b,--mix)): blocks are \
           a pure function of (seed, index), so disjoint slices of the \
           same seed partition one corpus exactly.")

let statements =
  Arg.(value & opt int 8 & info [ "statements" ] ~doc:"Statements per block.")

let variables =
  Arg.(value & opt int 5 & info [ "variables" ] ~doc:"Variable-pool size.")

let constants =
  Arg.(value & opt int 3 & info [ "constants" ] ~doc:"Constant-pool size.")

let mix =
  Arg.(
    value & flag
    & info [ "mix" ]
        ~doc:
          "Draw parameters from the paper's block-size mix instead, \
           seeding each block from its corpus index (the mega study's \
           block identity; see $(b,--start)).")

let show_source =
  Arg.(value & flag & info [ "source" ] ~doc:"Also print the source program.")

let optimize =
  Arg.(
    value & opt bool true
    & info [ "optimize" ] ~doc:"Run the optimizer before printing tuples.")

let mul_heavy =
  Arg.(
    value & flag
    & info [ "mul-heavy" ] ~doc:"Use the multiply-heavy frequency table.")

let cmd =
  Cmd.v
    (Cmd.info "pipesched-synthgen" ~doc:"generate synthetic basic blocks")
    Term.(
      const run $ count $ seed $ start $ statements $ variables $ constants
      $ mix $ show_source $ optimize $ mul_heavy)

let () = exit (Cmd.eval' cmd)
