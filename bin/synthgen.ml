(* Emit synthetic benchmark basic blocks (§5.2). *)

open Pipesched_ir
module Generator = Pipesched_synth.Generator
module Frequency = Pipesched_synth.Frequency
module Rng = Pipesched_prelude.Rng

let run count seed statements variables constants mix show_source optimize
    mul_heavy =
  let rng = Rng.create seed in
  let freq = if mul_heavy then Frequency.mul_heavy else Frequency.default in
  for i = 1 to count do
    let params =
      if mix then Generator.sample_params rng
      else { Generator.statements; variables; constants }
    in
    let prog = Generator.program ~freq rng params in
    Format.printf "# block %d (statements=%d variables=%d constants=%d)@." i
      params.Generator.statements params.Generator.variables
      params.Generator.constants;
    if show_source then
      Format.printf "%a@."
        Pipesched_frontend.Ast.pp_program prog;
    let blk = Pipesched_frontend.Compile.compile_program ~optimize prog in
    Format.printf "%a@.@." Block.pp blk
  done;
  0

open Cmdliner

let count =
  Arg.(value & opt int 1 & info [ "count"; "n" ] ~doc:"Blocks to generate.")

let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.")

let statements =
  Arg.(value & opt int 8 & info [ "statements" ] ~doc:"Statements per block.")

let variables =
  Arg.(value & opt int 5 & info [ "variables" ] ~doc:"Variable-pool size.")

let constants =
  Arg.(value & opt int 3 & info [ "constants" ] ~doc:"Constant-pool size.")

let mix =
  Arg.(
    value & flag
    & info [ "mix" ]
        ~doc:"Draw parameters from the paper's block-size mix instead.")

let show_source =
  Arg.(value & flag & info [ "source" ] ~doc:"Also print the source program.")

let optimize =
  Arg.(
    value & opt bool true
    & info [ "optimize" ] ~doc:"Run the optimizer before printing tuples.")

let mul_heavy =
  Arg.(
    value & flag
    & info [ "mul-heavy" ] ~doc:"Use the multiply-heavy frequency table.")

let cmd =
  Cmd.v
    (Cmd.info "pipesched-synthgen" ~doc:"generate synthetic basic blocks")
    Term.(
      const run $ count $ seed $ statements $ variables $ constants $ mix
      $ show_source $ optimize $ mul_heavy)

let () = exit (Cmd.eval' cmd)
