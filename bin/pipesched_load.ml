(* Open-loop load client for the scheduling daemon.

   Replays a Loadgen plan (a pure function of --seed/--shape/--rps/
   --duration/--dup-rate) against a running pipesched_server, either
   over its Unix socket (--socket, with --conns concurrent connections)
   or over the stdin/stdout of a child it spawns itself (--child, for
   CI environments without a socket).

   Open loop: every request is written at its scheduled offset from
   stream start, regardless of how many responses are still in flight —
   a slow server shows up as latency and eventually as drops, never as
   a quietly reduced offered rate.  One pacer (the main thread) writes;
   one reader systhread per connection classifies responses by stage
   and folds latencies into per-stage histograms.  All threads are
   systhreads in one domain, so the shared scorecard needs only one
   mutex.

   Retries (--retries > 0): a retryable failure (an "overloaded"
   admission refusal or a contained "internal error") — and a request
   whose answer is presumed lost because nothing came back within the
   backoff window — is resent up to the budget, after an exponential
   backoff with deterministic jitter (Loadgen.backoff_delay_s).  The
   resent line carries a "retry": N field, so the server's
   content-keyed chaos draws treat it as a distinct decision.  Failed
   attempts are scored as the non-terminal "retried" stage; every
   request still gets exactly one terminal outcome. *)

module Json = Pipesched_prelude.Json
module Loadgen = Pipesched_harness.Loadgen

(* [fd] is kept for socket connections so teardown can [shutdown(2)]
   them: closing an fd does not wake a thread blocked in read(2), but a
   shutdown delivers EOF to it.  [wlock] serializes the pacer and the
   retrier on the write side. *)
type conn = {
  ic : in_channel;
  oc : out_channel;
  fd : Unix.file_descr option;
  wlock : Mutex.t;
}

type scorecard = {
  lock : Mutex.t;
  o : Loadgen.outcome;
  answered : bool array;
  attempts : int array; (* resends so far, per request *)
  retry_at : float array; (* scheduled resend time; 0 = none *)
  mutable remaining : int;
}

type retry_cfg = { retries : int; backoff_ms : int; seed : int }

let write_line c line =
  Mutex.lock c.wlock;
  (try
     output_string c.oc line;
     output_char c.oc '\n';
     flush c.oc
   with Sys_error _ | Unix.Unix_error _ -> ());
  Mutex.unlock c.wlock

let reader (cfg : retry_cfg) (card : scorecard) send_times c () =
  let n = Array.length card.answered in
  let rec go () =
    match input_line c.ic with
    | line ->
      let now = Unix.gettimeofday () in
      let stage = Loadgen.classify line in
      let parsed = Json.parse line in
      let idx =
        match parsed with
        | Ok j -> (
          match Json.member "id" j with
          | Some (Json.Int i) when i >= 0 && i < n -> Some i
          | _ -> None)
        | Error _ -> None
      in
      let retry_after_s =
        match parsed with
        | Ok j -> (
          match Option.bind (Json.member "retry_after_ms" j) Json.to_float_opt with
          | Some ms when ms > 0.0 -> ms /. 1000.0
          | _ -> 0.0)
        | Error _ -> 0.0
      in
      Mutex.lock card.lock;
      (match idx with
      | Some i when card.answered.(i) ->
        (* A stale duplicate: this request was already terminally scored
           (e.g. a timeout resend raced a slow answer).  Ignore — double
           counting would break the one-terminal-outcome invariant. *)
        ()
      | Some i
        when cfg.retries > 0
             && Loadgen.retryable line
             && card.attempts.(i) < cfg.retries ->
        (* Non-terminal: schedule a resend and score this attempt as
           retried.  The server's retry_after_ms hint floors the
           deterministic backoff. *)
        card.attempts.(i) <- card.attempts.(i) + 1;
        let delay =
          Float.max retry_after_s
            (Loadgen.backoff_delay_s ~seed:cfg.seed ~index:i
               ~attempt:card.attempts.(i) ~backoff_ms:cfg.backoff_ms)
        in
        card.retry_at.(i) <- now +. delay;
        Loadgen.record card.o Loadgen.Retried
          ~latency_s:(now -. send_times.(i))
      | Some i ->
        card.answered.(i) <- true;
        card.remaining <- card.remaining - 1;
        Loadgen.record card.o stage ~latency_s:(now -. send_times.(i))
      | None ->
        (* Unmatchable line (no id we sent, e.g. a shutdown refusal):
           score the line itself; the request it displaced will age out
           as a drop. *)
        Loadgen.record card.o stage ~latency_s:0.0);
      let all_done = card.remaining = 0 in
      Mutex.unlock card.lock;
      if not all_done then go ()
    | exception End_of_file -> ()
    | exception Sys_error _ -> ()
  in
  go ()

(* The retrier sweeps for due resends: explicitly scheduled ones
   (retryable responses) and presumed-lost ones (no answer within the
   attempt's backoff window — a contained write_response fault or a
   dead connection eats the response line; without this sweep those
   could only ever be drops). *)
let retrier (cfg : retry_cfg) (card : scorecard) (plan : Loadgen.plan)
    send_times (conns : conn array) stop () =
  let n = Array.length card.answered in
  let k = Array.length conns in
  while not (Atomic.get stop) do
    Thread.delay 0.02;
    let now = Unix.gettimeofday () in
    for i = 0 to n - 1 do
      let resend =
        Mutex.lock card.lock;
        let r =
          if card.answered.(i) then None
          else if card.retry_at.(i) > 0.0 && now >= card.retry_at.(i) then begin
            card.retry_at.(i) <- 0.0;
            Some card.attempts.(i)
          end
          else if
            card.retry_at.(i) = 0.0
            && send_times.(i) > 0.0
            && card.attempts.(i) < cfg.retries
            && now -. send_times.(i)
               > Loadgen.backoff_delay_s ~seed:cfg.seed ~index:i
                   ~attempt:(card.attempts.(i) + 1)
                   ~backoff_ms:cfg.backoff_ms
          then begin
            card.attempts.(i) <- card.attempts.(i) + 1;
            Loadgen.record card.o Loadgen.Retried
              ~latency_s:(now -. send_times.(i));
            Some card.attempts.(i)
          end
          else None
        in
        (match r with Some _ -> send_times.(i) <- now | None -> ());
        Mutex.unlock card.lock;
        r
      in
      match resend with
      | None -> ()
      | Some attempt ->
        write_line conns.(i mod k)
          (Loadgen.retry_line plan.Loadgen.requests.(i).Loadgen.line ~attempt)
    done
  done

let pace (plan : Loadgen.plan) card send_times (conns : conn array) =
  let k = Array.length conns in
  let t0 = Unix.gettimeofday () in
  Array.iter
    (fun (r : Loadgen.request) ->
      let target = t0 +. r.Loadgen.time in
      let now = Unix.gettimeofday () in
      if target > now then Thread.delay (target -. now);
      let c = conns.(r.Loadgen.index mod k) in
      Mutex.lock card.lock;
      send_times.(r.Loadgen.index) <- Unix.gettimeofday ();
      Mutex.unlock card.lock;
      write_line c r.Loadgen.line)
    plan.Loadgen.requests;
  t0

let run shape seed rps duration dup_rate hot conns socket_path child machine
    lambda deadline_ms grace retries backoff_ms emit_json det_json strict =
  let shape =
    match Loadgen.shape_of_string shape with
    | Ok s -> s
    | Error e ->
      prerr_endline ("pipesched_load: " ^ e);
      exit 124
  in
  (* A server (or spawned child) that dies mid-burst must surface as
     write failures and drops in the report, not kill the client. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let plan =
    Loadgen.plan ~machine ~hot ?lambda ?deadline_ms ~dup_rate ~seed ~shape
      ~rps ~duration ()
  in
  let n = Array.length plan.Loadgen.requests in
  (* [wake] unblocks every reader thread (shutdown(2) for sockets, child
     stdin EOF for a spawned server); [close] reclaims the transports
     after the readers have been joined. *)
  let conns, wake, close =
    match (socket_path, child) with
    | Some _, Some _ ->
      prerr_endline "pipesched_load: --socket and --child are exclusive";
      exit 124
    | None, None ->
      prerr_endline "pipesched_load: one of --socket or --child is required";
      exit 124
    | Some path, None ->
      let connect () =
        let fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
        (try Unix.connect fd (ADDR_UNIX path)
         with Unix.Unix_error (e, _, _) ->
           Printf.eprintf "pipesched_load: cannot connect to %s: %s\n%!" path
             (Unix.error_message e);
           exit 124);
        { ic = Unix.in_channel_of_descr fd;
          oc = Unix.out_channel_of_descr fd;
          fd = Some fd;
          wlock = Mutex.create () }
      in
      let cs = Array.init (max 1 conns) (fun _ -> connect ()) in
      let wake () =
        Array.iter
          (fun c ->
            (try flush c.oc with Sys_error _ -> ());
            match c.fd with
            | Some fd -> (
              try Unix.shutdown fd Unix.SHUTDOWN_ALL
              with Unix.Unix_error _ -> ())
            | None -> ())
          cs
      in
      let close () =
        Array.iter (fun c -> try close_out c.oc with Sys_error _ -> ()) cs
      in
      (cs, wake, close)
    | None, Some cmd ->
      let ic, oc = Unix.open_process cmd in
      let wake () = try close_out oc with Sys_error _ -> () in
      let close () = ignore (Unix.close_process (ic, oc)) in
      ([| { ic; oc; fd = None; wlock = Mutex.create () } |], wake, close)
  in
  let card =
    { lock = Mutex.create ();
      o = Loadgen.outcome ();
      answered = Array.make n false;
      attempts = Array.make n 0;
      retry_at = Array.make n 0.0;
      remaining = n }
  in
  let cfg = { retries = max 0 retries; backoff_ms = max 1 backoff_ms; seed } in
  let send_times = Array.make n 0.0 in
  let readers =
    Array.map (fun c -> Thread.create (reader cfg card send_times c) ()) conns
  in
  let stop_retrier = Atomic.make false in
  let retrier_t =
    if cfg.retries > 0 then
      Some
        (Thread.create (retrier cfg card plan send_times conns stop_retrier) ())
    else None
  in
  let t0 = pace plan card send_times conns in
  (* Give stragglers [grace] seconds after the last send, then call
     whatever is still unanswered dropped. *)
  let deadline = Unix.gettimeofday () +. grace in
  let rec await () =
    Mutex.lock card.lock;
    let rem = card.remaining in
    Mutex.unlock card.lock;
    if rem > 0 && Unix.gettimeofday () < deadline then begin
      Thread.delay 0.02;
      await ()
    end
  in
  await ();
  Atomic.set stop_retrier true;
  (match retrier_t with Some t -> Thread.join t | None -> ());
  let wall_s = Unix.gettimeofday () -. t0 in
  Mutex.lock card.lock;
  Array.iter
    (fun answered ->
      if not answered then Loadgen.record card.o Loadgen.Dropped ~latency_s:0.0)
    card.answered;
  Mutex.unlock card.lock;
  wake ();
  Array.iter Thread.join readers;
  close ();
  let report =
    Loadgen.summarize ~plan ~conns:(Array.length conns) ~wall_s card.o
  in
  Loadgen.pp_report Format.err_formatter report;
  Format.pp_print_flush Format.err_formatter ();
  if emit_json then print_endline (Json.to_string (Loadgen.report_json report));
  if det_json then
    print_endline (Json.to_string (Loadgen.report_deterministic_json report));
  if strict && (report.Loadgen.r_errors > 0 || report.Loadgen.r_drops > 0)
  then begin
    Printf.eprintf "pipesched_load: strict: %d error(s), %d drop(s)\n%!"
      report.Loadgen.r_errors report.Loadgen.r_drops;
    1
  end
  else 0

open Cmdliner

let shape =
  Arg.(
    value & opt string "soak"
    & info [ "shape" ] ~docv:"SHAPE"
        ~doc:
          "Arrival pattern: $(b,soak) (constant rate), $(b,burst) (each \
           second's traffic at once), $(b,ramp) (four stages at \
           0.25/0.5/1.0/1.5 x rate) or $(b,mix) (soak plus periodic \
           bursts).")

let seed =
  Arg.(
    value & opt int 42
    & info [ "seed" ] ~docv:"N"
        ~doc:
          "Workload seed.  The full request stream (arrival times and \
           block bodies) is a pure function of the seed and the load \
           flags.")

let rps =
  Arg.(
    value & opt float 20.0
    & info [ "rps" ] ~docv:"R" ~doc:"Nominal peak request rate per second.")

let duration =
  Arg.(
    value & opt float 5.0
    & info [ "duration" ] ~docv:"S" ~doc:"Nominal stream length in seconds.")

let dup_rate =
  Arg.(
    value & opt float 0.0
    & info [ "dup-rate" ] ~docv:"P"
        ~doc:
          "Probability in [0,1] that a request re-presents a block from \
           the hot pool (cache-hit traffic after first presentation).")

let hot =
  Arg.(
    value & opt int 8
    & info [ "hot" ] ~docv:"N" ~doc:"Size of the hot (duplicate) block pool.")

let conns =
  Arg.(
    value & opt int 4
    & info [ "conns" ] ~docv:"N"
        ~doc:
          "Concurrent socket connections (requests round-robin across \
           them).  Ignored with $(b,--child), which has one stream.")

let socket_path =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Connect to a running pipesched_server Unix socket at $(docv).")

let child =
  Arg.(
    value
    & opt (some string) None
    & info [ "child" ] ~docv:"CMD"
        ~doc:
          "Spawn $(docv) with a shell and drive its stdin/stdout instead \
           of a socket (CI mode, e.g. \"dune exec pipesched_server --\").")

let machine =
  Arg.(
    value & opt string "simulation"
    & info [ "machine" ] ~docv:"PRESET"
        ~doc:"Machine preset named in every request.")

let lambda =
  Arg.(
    value
    & opt (some int) None
    & info [ "lambda" ] ~docv:"N"
        ~doc:"Per-request Omega-call budget override sent with every request.")

let deadline_ms =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:"Per-request wall-clock deadline sent with every request.")

let grace =
  Arg.(
    value & opt float 10.0
    & info [ "grace" ] ~docv:"S"
        ~doc:
          "Seconds to wait for in-flight responses after the last send \
           before counting the remainder as dropped.")

let retries =
  Arg.(
    value & opt int 0
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Resend a request up to $(docv) times on a retryable failure \
           (\"overloaded\", contained \"internal error\") or when no \
           answer arrives within the attempt's backoff window.  Each \
           resend carries a \"retry\" field so chaos fault draws treat \
           it as a fresh decision.  0 (default) disables retries.")

let backoff_ms =
  Arg.(
    value & opt int 200
    & info [ "backoff-ms" ] ~docv:"MS"
        ~doc:
          "Base retry backoff: attempt k waits about $(docv) x 2^(k-1) \
           ms, scaled by a deterministic jitter in [0.5, 1.5) derived \
           from the workload seed.")

let emit_json =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "Print the full report as one JSON object on stdout (the \
           human-readable report always goes to stderr).")

let det_json =
  Arg.(
    value & flag
    & info [ "det-json" ]
        ~doc:
          "Print the deterministic report (no wall-clock fields) as one \
           JSON object on stdout — byte-comparable across replays of the \
           same seed against equivalent servers; the chaos-determinism \
           CI check diffs two of these.")

let strict =
  Arg.(
    value & flag
    & info [ "strict" ]
        ~doc:"Exit 1 if any request errored or was dropped.")

let cmd =
  Cmd.v
    (Cmd.info "pipesched_load"
       ~doc:
         "open-loop load client for pipesched_server: replays a seeded, \
          DSL-shaped request stream and reports per-stage (cache hit / \
          fresh solve / curtailed / degraded / rejected / error / \
          dropped) latency percentiles, with optional deterministic \
          retries")
    Term.(
      const run $ shape $ seed $ rps $ duration $ dup_rate $ hot $ conns
      $ socket_path $ child $ machine $ lambda $ deadline_ms $ grace
      $ retries $ backoff_ms $ emit_json $ det_json $ strict)

let () = exit (Cmd.eval' cmd)
