(* Regenerate the tables and figures of the paper (see DESIGN.md §4). *)

module E = Pipesched_harness.Experiments
module Mega = Pipesched_harness.Mega
module Aggregate = Pipesched_harness.Aggregate

let sections =
  [ "machines"; "table1"; "table6"; "table7"; "fig1"; "fig4"; "fig5";
    "fig6"; "fig7"; "ablation"; "machine-sweep"; "structure-sweep"; "windowed"; "region";
    "heuristics"; "kernels"; "pressure"; "dynamic"; "portfolio" ]

(* --progress heartbeats: stderr, rate-limited to ~1/s, off by default.
   Both callbacks run on worker domains (study) or the master select
   loop (mega); the [last] race between domains is harmless (worst
   case: one extra line). *)
let study_heartbeat () =
  let t0 = Unix.gettimeofday () in
  let last = ref 0.0 in
  fun done_ ->
    let now = Unix.gettimeofday () in
    if now -. !last >= 1.0 then begin
      last := now;
      Printf.eprintf "\r[study] %d searches done  %.1f/s   %!" done_
        (float_of_int done_ /. (now -. t0))
    end

let mega_heartbeat () =
  let last = ref 0.0 in
  fun (p : Mega.progress) ->
    let now = Unix.gettimeofday () in
    if now -. !last >= 1.0 then begin
      last := now;
      let fresh = p.Mega.done_blocks - p.Mega.resumed in
      let rate =
        if p.Mega.elapsed_s > 0.0 then
          float_of_int fresh /. p.Mega.elapsed_s
        else 0.0
      in
      let eta =
        if rate > 0.0 then
          float_of_int (p.Mega.total - p.Mega.done_blocks) /. rate
        else 0.0
      in
      Printf.eprintf
        "\r[mega] %d/%d blocks  %.0f blocks/s  ETA %.0fs  shards %d/%d live   %!"
        p.Mega.done_blocks p.Mega.total rate eta p.Mega.live_shards
        p.Mega.shards
    end

let run_mega ~count ~seed ~lambda ~jobs ~search_jobs ~certify ~shards
    ~checkpoint_every ~checkpoint_dir ~resume ~progress ~mega_out
    ~dedup_capacity =
  let cfg =
    {
      Mega.default with
      Mega.seed;
      count;
      shards;
      jobs = (match jobs with None -> 1 | Some j -> max 1 j);
      search_jobs;
      lambda;
      dedup_capacity;
      checkpoint_every;
      checkpoint_dir;
      certify;
    }
  in
  let progress_cb = if progress then Some (mega_heartbeat ()) else None in
  match Mega.run ?progress:progress_cb ~resume cfg with
  | Error msg ->
    if progress then prerr_newline ();
    prerr_endline msg;
    1
  | Ok (agg, stats) ->
    if progress then prerr_newline ();
    Format.printf "Mega study: %d blocks over %d shards (seed %d)@." count
      (Mega.effective_shards cfg) seed;
    Format.printf "this run: %d searched (+%d resumed) in %.1fs = %.1f blocks/s@."
      stats.Mega.processed stats.Mega.resumed stats.Mega.wall_s
      stats.Mega.blocks_per_s;
    Aggregate.pp Format.std_formatter agg;
    let line = Aggregate.render agg ^ "\n" in
    (match mega_out with
    | Some path ->
      let oc = open_out path in
      output_string oc line;
      close_out oc;
      Format.printf "aggregate written to %s@." path
    | None -> Format.printf "aggregate: %s@." (Aggregate.render agg));
    0

let run count seed quick lambda deadline_ms block_deadline_ms strong no_memo
    memo_capacity jobs search_jobs strict certify backend mega shards
    checkpoint_every checkpoint_dir resume progress mega_out dedup_capacity
    only =
  if Pipesched_core.Scheduler.find backend = None then begin
    Format.eprintf "unknown backend %S (have: %s)@." backend
      (String.concat ", " Pipesched_core.Scheduler.names);
    exit 2
  end;
  let count = if quick then min count 1_000 else count in
  let jobs = if jobs <= 0 then None else Some jobs in
  let search_jobs =
    Some
      (Pipesched_parallel.Pool.resolve_search_jobs
         (if search_jobs <= 0 then None else Some search_jobs))
  in
  let to_s ms = Option.map (fun m -> float_of_int m /. 1000.0) ms in
  let deadline_s = to_s deadline_ms in
  let block_deadline_s = to_s block_deadline_ms in
  let memo =
    { Pipesched_core.Optimal.default_memo with
      Pipesched_core.Optimal.memo_enabled = not no_memo;
      Pipesched_core.Optimal.memo_capacity }
  in
  if mega > 0 then
    run_mega ~count:mega ~seed ~lambda ~jobs
      ~search_jobs:(match search_jobs with Some j -> j | None -> 1)
      ~certify ~shards ~checkpoint_every ~checkpoint_dir ~resume ~progress
      ~mega_out ~dedup_capacity
  else begin
  let progress = if progress then Some (study_heartbeat ()) else None in
  let fmt = Format.std_formatter in
  (match only with
   | [] ->
     E.run_all ~seed ~count ~lambda ~strong ~memo ?deadline_s
       ?block_deadline_s ?jobs ?search_jobs ~strict ~certify ~backend
       ?progress fmt
   | wanted ->
     List.iter
       (fun section ->
         if not (List.mem section sections) then begin
           Format.eprintf "unknown section %S (have: %s)@." section
             (String.concat ", " sections);
           exit 2
         end)
       wanted;
     let study =
       lazy
         (E.run_study ~seed ~count ~lambda ~strong ~memo ?deadline_s
            ?block_deadline_s ?jobs ?search_jobs ~strict ~certify ~backend
            ?progress ())
     in
     List.iter
       (fun section ->
         match section with
         | "machines" -> E.print_machines fmt
         | "table1" -> E.print_table1 fmt ()
         | "table6" -> E.print_table6 fmt
         | "table7" -> E.print_table7 fmt (Lazy.force study)
         | "fig1" -> E.print_fig1 fmt (Lazy.force study)
         | "fig4" -> E.print_fig4 fmt (Lazy.force study)
         | "fig5" -> E.print_fig5 fmt (Lazy.force study)
         | "fig6" -> E.print_fig6 fmt (Lazy.force study)
         | "fig7" -> E.print_fig7 fmt (Lazy.force study)
         | "ablation" ->
           Pipesched_harness.Ablation.print fmt
             (Pipesched_harness.Ablation.run ?jobs ~seed:(seed + 1)
                ~count:(max 200 (count / 8))
                ~lambda:20_000 Pipesched_machine.Machine.Presets.simulation)
         | "machine-sweep" ->
           E.print_machine_sweep ~count:(max 200 (count / 16)) ?jobs fmt
         | "structure-sweep" ->
           E.print_structure_sweep ~count:(max 100 (count / 50)) ?jobs fmt
         | "windowed" -> E.print_windowed_study ~count:(max 50 (count / 100)) fmt
         | "region" -> E.print_region_study ~count:(max 50 (count / 100)) fmt
         | "heuristics" ->
           E.print_heuristic_study ~count:(max 200 (count / 8)) fmt
         | "kernels" -> E.print_kernel_study fmt
         | "pressure" ->
           E.print_pressure_study ~count:(max 150 (count / 20)) fmt
         | "dynamic" -> E.print_dynamic_study ~count:(max 40 (count / 150)) fmt
         | "portfolio" ->
           E.print_portfolio_study ~seed:(seed + 2)
             ~count:(max 40 (count / 200)) fmt
         | _ -> assert false)
       wanted);
  if progress <> None then prerr_newline ();
  0
  end

open Cmdliner

let count =
  let doc = "Number of synthetic blocks in the main study (paper: 16000)." in
  Arg.(value & opt int 16_000 & info [ "count"; "n" ] ~doc)

let seed =
  let doc = "Random seed for all generated populations." in
  Arg.(value & opt int 1990 & info [ "seed" ] ~doc)

let quick =
  let doc = "Cap the study at 1000 blocks for a fast smoke run." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let lambda =
  let doc = "Curtail point: maximum Omega calls per block." in
  Arg.(value & opt int 50_000 & info [ "lambda" ] ~doc)

let deadline_ms =
  let doc =
    "Wall-clock deadline in milliseconds for the $(i,whole) main study \
     (anytime mode): blocks whose turn comes after expiry record their \
     list-schedule incumbents with a Curtailed_deadline status and the \
     sweep still completes."
  in
  Arg.(
    value
    & opt (some int) None
    & info [ "deadline-ms" ]
        ~env:(Cmd.Env.info "PIPESCHED_DEADLINE_MS")
        ~doc)

let block_deadline_ms =
  let doc =
    "Wall-clock deadline in milliseconds for $(i,each block's) search in \
     the main study (anytime mode per block)."
  in
  Arg.(value & opt (some int) None & info [ "block-deadline-ms" ] ~doc)

let strong =
  let doc =
    "Enable the strong-equivalence pruning extension (still optimal)."
  in
  Arg.(value & flag & info [ "strong" ] ~doc)

let no_memo =
  let doc =
    "Disable the dominance-memoization extension (the transposition \
     table over scheduled-sets).  The memo never changes reported \
     optima, only the Omega calls spent reaching them."
  in
  Arg.(value & flag & info [ "no-memo" ] ~doc)

let memo_capacity =
  let doc =
    "Capacity (entries, rounded up to a power of two) of the dominance \
     memo table."
  in
  Arg.(value & opt int 4_096 & info [ "memo-capacity" ] ~doc)

let jobs =
  let doc =
    "Worker domains for the studies (0 = auto: \\$(b,PIPESCHED_JOBS) or \
     the recommended domain count).  Results are identical at any job \
     count; only wall-clock time changes."
  in
  Arg.(value & opt int 0 & info [ "jobs"; "j" ] ~doc)

let search_jobs =
  let doc =
    "Worker domains $(i,inside each block's) branch-and-bound search \
     (two-level scheme; 0 = auto: \\$(b,PIPESCHED_SEARCH_JOBS) or 1, the \
     serial search).  The reported schedules and NOP counts are \
     identical at any value; only wall-clock time and the exploration \
     counters change."
  in
  Arg.(
    value
    & opt int 0
    & info [ "search-jobs" ]
        ~env:(Cmd.Env.info "PIPESCHED_SEARCH_JOBS")
        ~doc)

let strict =
  let doc =
    "Fail fast: let the first per-block exception in the main study kill \
     the sweep instead of being contained as a Failed record."
  in
  Arg.(value & flag & info [ "strict" ] ~doc)

let certify =
  let doc =
    "Re-check every schedule in the main study with the independent \
     certifier (constraints, NOP accounting, ordering, semantics).  A \
     certification failure is contained as a Failed record (or kills \
     the sweep under $(b,--strict))."
  in
  Arg.(value & flag & info [ "certify" ] ~doc)

let backend =
  let doc =
    "Scheduler backend for the main study: $(b,bnb) (the paper's \
     branch-and-bound, default), $(b,cp) (the propagation/learning \
     solver), $(b,portfolio) (both racing, sharing the incumbent), \
     $(b,windowed), or $(b,list)."
  in
  Arg.(value & opt string "bnb" & info [ "backend" ] ~doc)

let mega =
  let doc =
    "Run a sharded mega study over $(docv) blocks instead of the paper \
     sections: worker processes stream per-block records to a \
     constant-memory aggregate, with checkpoint/resume (see \
     $(b,--shards), $(b,--checkpoint-every), $(b,--resume)).  The \
     aggregate is byte-identical at any $(b,--shards)/$(b,--jobs).  \
     $(b,--seed), $(b,--lambda), $(b,--jobs), $(b,--search-jobs) and \
     $(b,--certify) apply; 0 (the default) disables mega mode."
  in
  Arg.(value & opt int 0 & info [ "mega" ] ~doc ~docv:"BLOCKS")

let shards =
  let doc = "Worker $(i,processes) for the mega study." in
  Arg.(value & opt int 2 & info [ "shards" ] ~doc)

let checkpoint_every =
  let doc =
    "Blocks between atomic per-shard checkpoints in the mega study; a \
     killed run loses at most this many blocks per shard."
  in
  Arg.(value & opt int 1_000 & info [ "checkpoint-every" ] ~doc)

let checkpoint_dir =
  let doc = "Directory for mega-study shard checkpoints." in
  Arg.(
    value & opt string "mega-checkpoints" & info [ "checkpoint-dir" ] ~doc)

let resume =
  let doc =
    "Resume the mega study from the checkpoints in \
     $(b,--checkpoint-dir): completed shards are replayed from their \
     checkpoint, interrupted ones restart at their last one.  The flags \
     defining the corpus ($(b,--mega), $(b,--seed), $(b,--shards), \
     $(b,--lambda), ...) must match the checkpointed run; mismatched \
     checkpoints are ignored."
  in
  Arg.(value & flag & info [ "resume" ] ~doc)

let progress =
  let doc =
    "Emit a rate-limited heartbeat on stderr (blocks done, blocks/sec, \
     ETA, shard liveness) during the main study or a mega run."
  in
  Arg.(value & flag & info [ "progress" ] ~doc)

let mega_out =
  let doc =
    "Write the mega study's deterministic aggregate (one JSON line) to \
     $(docv) — the byte-identity artifact CI diffs across shard counts \
     and kill/resume runs."
  in
  Arg.(value & opt (some string) None & info [ "mega-out" ] ~doc ~docv:"FILE")

let dedup_capacity =
  let doc =
    "Per-shard canonical-dedup LRU capacity (entries) in the mega study; \
     0 disables dedup.  Result-transparent: only wall-clock time \
     changes."
  in
  Arg.(value & opt int 65_536 & info [ "dedup-capacity" ] ~doc)

let only =
  let doc =
    Printf.sprintf "Run only the named sections (repeatable): %s."
      (String.concat ", " sections)
  in
  Arg.(value & opt_all string [] & info [ "only" ] ~doc)

let cmd =
  let doc =
    "reproduce the tables and figures of Nisar & Dietz (ICPP 1990)"
  in
  Cmd.v
    (Cmd.info "pipesched-experiments" ~doc)
    Term.(
      const run $ count $ seed $ quick $ lambda $ deadline_ms
      $ block_deadline_ms $ strong $ no_memo $ memo_capacity $ jobs
      $ search_jobs $ strict $ certify $ backend $ mega $ shards $ checkpoint_every
      $ checkpoint_dir $ resume $ progress $ mega_out $ dedup_capacity
      $ only)

let () =
  (* Must run before cmdliner sees argv: a [--mega-worker] invocation is
     a shard of a mega study re-executing this binary. *)
  Mega.run_if_worker ();
  exit (Cmd.eval' cmd)
