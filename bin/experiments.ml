(* Regenerate the tables and figures of the paper (see DESIGN.md §4). *)

module E = Pipesched_harness.Experiments

let sections =
  [ "machines"; "table1"; "table6"; "table7"; "fig1"; "fig4"; "fig5";
    "fig6"; "fig7"; "ablation"; "machine-sweep"; "structure-sweep"; "windowed"; "region";
    "heuristics"; "kernels"; "pressure"; "dynamic" ]

let run count seed quick lambda deadline_ms block_deadline_ms strong no_memo
    memo_capacity jobs search_jobs strict certify only =
  let count = if quick then min count 1_000 else count in
  let jobs = if jobs <= 0 then None else Some jobs in
  let search_jobs =
    Some
      (Pipesched_parallel.Pool.resolve_search_jobs
         (if search_jobs <= 0 then None else Some search_jobs))
  in
  let to_s ms = Option.map (fun m -> float_of_int m /. 1000.0) ms in
  let deadline_s = to_s deadline_ms in
  let block_deadline_s = to_s block_deadline_ms in
  let memo =
    { Pipesched_core.Optimal.default_memo with
      Pipesched_core.Optimal.memo_enabled = not no_memo;
      Pipesched_core.Optimal.memo_capacity }
  in
  let fmt = Format.std_formatter in
  (match only with
   | [] ->
     E.run_all ~seed ~count ~lambda ~strong ~memo ?deadline_s
       ?block_deadline_s ?jobs ?search_jobs ~strict ~certify fmt
   | wanted ->
     List.iter
       (fun section ->
         if not (List.mem section sections) then begin
           Format.eprintf "unknown section %S (have: %s)@." section
             (String.concat ", " sections);
           exit 2
         end)
       wanted;
     let study =
       lazy
         (E.run_study ~seed ~count ~lambda ~strong ~memo ?deadline_s
            ?block_deadline_s ?jobs ?search_jobs ~strict ~certify ())
     in
     List.iter
       (fun section ->
         match section with
         | "machines" -> E.print_machines fmt
         | "table1" -> E.print_table1 fmt ()
         | "table6" -> E.print_table6 fmt
         | "table7" -> E.print_table7 fmt (Lazy.force study)
         | "fig1" -> E.print_fig1 fmt (Lazy.force study)
         | "fig4" -> E.print_fig4 fmt (Lazy.force study)
         | "fig5" -> E.print_fig5 fmt (Lazy.force study)
         | "fig6" -> E.print_fig6 fmt (Lazy.force study)
         | "fig7" -> E.print_fig7 fmt (Lazy.force study)
         | "ablation" ->
           Pipesched_harness.Ablation.print fmt
             (Pipesched_harness.Ablation.run ?jobs ~seed:(seed + 1)
                ~count:(max 200 (count / 8))
                ~lambda:20_000 Pipesched_machine.Machine.Presets.simulation)
         | "machine-sweep" ->
           E.print_machine_sweep ~count:(max 200 (count / 16)) ?jobs fmt
         | "structure-sweep" ->
           E.print_structure_sweep ~count:(max 100 (count / 50)) ?jobs fmt
         | "windowed" -> E.print_windowed_study ~count:(max 50 (count / 100)) fmt
         | "region" -> E.print_region_study ~count:(max 50 (count / 100)) fmt
         | "heuristics" ->
           E.print_heuristic_study ~count:(max 200 (count / 8)) fmt
         | "kernels" -> E.print_kernel_study fmt
         | "pressure" ->
           E.print_pressure_study ~count:(max 150 (count / 20)) fmt
         | "dynamic" -> E.print_dynamic_study ~count:(max 40 (count / 150)) fmt
         | _ -> assert false)
       wanted);
  0

open Cmdliner

let count =
  let doc = "Number of synthetic blocks in the main study (paper: 16000)." in
  Arg.(value & opt int 16_000 & info [ "count"; "n" ] ~doc)

let seed =
  let doc = "Random seed for all generated populations." in
  Arg.(value & opt int 1990 & info [ "seed" ] ~doc)

let quick =
  let doc = "Cap the study at 1000 blocks for a fast smoke run." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let lambda =
  let doc = "Curtail point: maximum Omega calls per block." in
  Arg.(value & opt int 50_000 & info [ "lambda" ] ~doc)

let deadline_ms =
  let doc =
    "Wall-clock deadline in milliseconds for the $(i,whole) main study \
     (anytime mode): blocks whose turn comes after expiry record their \
     list-schedule incumbents with a Curtailed_deadline status and the \
     sweep still completes."
  in
  Arg.(
    value
    & opt (some int) None
    & info [ "deadline-ms" ]
        ~env:(Cmd.Env.info "PIPESCHED_DEADLINE_MS")
        ~doc)

let block_deadline_ms =
  let doc =
    "Wall-clock deadline in milliseconds for $(i,each block's) search in \
     the main study (anytime mode per block)."
  in
  Arg.(value & opt (some int) None & info [ "block-deadline-ms" ] ~doc)

let strong =
  let doc =
    "Enable the strong-equivalence pruning extension (still optimal)."
  in
  Arg.(value & flag & info [ "strong" ] ~doc)

let no_memo =
  let doc =
    "Disable the dominance-memoization extension (the transposition \
     table over scheduled-sets).  The memo never changes reported \
     optima, only the Omega calls spent reaching them."
  in
  Arg.(value & flag & info [ "no-memo" ] ~doc)

let memo_capacity =
  let doc =
    "Capacity (entries, rounded up to a power of two) of the dominance \
     memo table."
  in
  Arg.(value & opt int 4_096 & info [ "memo-capacity" ] ~doc)

let jobs =
  let doc =
    "Worker domains for the studies (0 = auto: \\$(b,PIPESCHED_JOBS) or \
     the recommended domain count).  Results are identical at any job \
     count; only wall-clock time changes."
  in
  Arg.(value & opt int 0 & info [ "jobs"; "j" ] ~doc)

let search_jobs =
  let doc =
    "Worker domains $(i,inside each block's) branch-and-bound search \
     (two-level scheme; 0 = auto: \\$(b,PIPESCHED_SEARCH_JOBS) or 1, the \
     serial search).  The reported schedules and NOP counts are \
     identical at any value; only wall-clock time and the exploration \
     counters change."
  in
  Arg.(
    value
    & opt int 0
    & info [ "search-jobs" ]
        ~env:(Cmd.Env.info "PIPESCHED_SEARCH_JOBS")
        ~doc)

let strict =
  let doc =
    "Fail fast: let the first per-block exception in the main study kill \
     the sweep instead of being contained as a Failed record."
  in
  Arg.(value & flag & info [ "strict" ] ~doc)

let certify =
  let doc =
    "Re-check every schedule in the main study with the independent \
     certifier (constraints, NOP accounting, ordering, semantics).  A \
     certification failure is contained as a Failed record (or kills \
     the sweep under $(b,--strict))."
  in
  Arg.(value & flag & info [ "certify" ] ~doc)

let only =
  let doc =
    Printf.sprintf "Run only the named sections (repeatable): %s."
      (String.concat ", " sections)
  in
  Arg.(value & opt_all string [] & info [ "only" ] ~doc)

let cmd =
  let doc =
    "reproduce the tables and figures of Nisar & Dietz (ICPP 1990)"
  in
  Cmd.v
    (Cmd.info "pipesched-experiments" ~doc)
    Term.(
      const run $ count $ seed $ quick $ lambda $ deadline_ms
      $ block_deadline_ms $ strong $ no_memo $ memo_capacity $ jobs
      $ search_jobs $ strict $ certify $ only)

let () = exit (Cmd.eval' cmd)
