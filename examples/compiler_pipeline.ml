(* The whole compiler back end, end to end:

     source text -> tuples -> optimizer -> list schedule -> optimal
     schedule -> register allocation -> assembly

   mirroring Figure 2 of the paper.  Run with:

     dune exec examples/compiler_pipeline.exe *)

open Pipesched_ir
open Pipesched_machine
open Pipesched_sched
open Pipesched_core
open Pipesched_frontend
module Regalloc = Pipesched_regalloc

(* An inner-loop body: a small FIR-filter-like update, the kind of
   load/multiply-heavy code the paper's introduction motivates. *)
let source =
  "acc = acc + w0 * x0;\n\
   acc = acc + w1 * x1;\n\
   acc = acc + w2 * x2;\n\
   y = acc >> 15;\n\
   energy = energy + y * y;"

let () =
  let machine = Machine.Presets.simulation in
  Format.printf "source:@.%s@.@." source;

  (* Front end: parse, generate tuples, optimize (§3.1). *)
  let program = Parser.parse source in
  let naive = Gen.generate ~reuse:false program in
  let block = Opt.optimize naive in
  Format.printf "tuples before optimization: %d, after: %d@.%a@.@."
    (Block.length naive) (Block.length block) Block.pp block;

  (* List scheduler (§3.2): the machine-independent seed. *)
  let dag = Dag.of_block block in
  let list_order = List_sched.schedule List_sched.Max_distance dag in
  let listed = Omega.evaluate machine dag ~order:list_order in
  let source_eval =
    Omega.evaluate machine dag
      ~order:(Omega.identity_order (Block.length block))
  in
  Format.printf "NOPs: source order %d, list schedule %d@."
    source_eval.Omega.nops listed.Omega.nops;

  (* Pipeline scheduler (§3.3): the branch-and-bound search. *)
  let outcome = Optimal.schedule machine dag in
  let best = outcome.Optimal.best in
  Format.printf "NOPs: optimal %d (%d Omega calls, %s)@.@." best.Omega.nops
    outcome.Optimal.stats.Optimal.omega_calls
    (if outcome.Optimal.stats.Optimal.completed then "complete search"
     else "curtailed");

  (* Register allocation and code generation (§3.4) — only now do values
     get registers, so the scheduler was never constrained by reuse. *)
  let scheduled = Block.permute block best.Omega.order in
  (match Regalloc.Alloc.allocate scheduled ~registers:16 with
   | Error (pos, demand) ->
     Format.printf "register pressure %d at %d exceeds the file@." demand pos
   | Ok alloc ->
     Format.printf "assembly (%d registers):@.%s@."
       (Regalloc.Alloc.registers_used alloc)
       (Regalloc.Codegen.emit scheduled ~eta:best.Omega.eta ~alloc));

  (* Sanity: scheduling preserved the program's meaning. *)
  let env _ = 3 in
  let ok =
    Interp.equivalent_on program scheduled ~env
      ~vars:(Ast.read_vars program @ Ast.written_vars program)
  in
  Format.printf "@.semantics preserved: %b@." ok;

  (* And the three delay-implementation models of §2.2 agree. *)
  let padded =
    Interlock.execute_padded (Interlock.nop_padded dag best)
  in
  let tagged =
    Interlock.execute_tagged (Interlock.explicit_tags machine dag best)
  in
  Format.printf
    "total cycles: %d (NOP padding) = %d (explicit interlock tags)@." padded
    tagged
