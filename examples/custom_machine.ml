(* Describing your own machine, and scheduling across multiple pipelines.

   The paper's model (§4.1) is two tables: pipelines (latency + enqueue
   time) and an operation-to-pipeline-set map.  This example builds the
   illustrative five-pipeline machine of Tables 2/3 — two loaders, two
   adders, one multiplier — and shows the multi-pipeline search extension
   spreading work across duplicated units (the feature footnote 3 leaves
   out of the paper's algorithm).

   Run with:  dune exec examples/custom_machine.exe *)

open Pipesched_ir
open Pipesched_machine
open Pipesched_core
open Pipesched_frontend

let () =
  (* Table 2: the pipelines. *)
  let pipes =
    [| Pipe.make ~label:"loader" ~latency:2 ~enqueue:1;
       Pipe.make ~label:"loader" ~latency:2 ~enqueue:1;
       Pipe.make ~label:"adder" ~latency:4 ~enqueue:3;
       Pipe.make ~label:"adder" ~latency:4 ~enqueue:3;
       Pipe.make ~label:"multiplier" ~latency:4 ~enqueue:2 |]
  in
  (* Table 3: which pipelines each operation may use. *)
  let machine =
    Machine.make ~name:"tables-2-and-3" pipes
      ~assign:[ (Op.Load, [ 0; 1 ]); (Op.Add, [ 2; 3 ]); (Op.Sub, [ 2; 3 ]);
                (Op.Mul, [ 4 ]); (Op.Div, [ 4 ]) ]
  in
  Machine.pp_tables Format.std_formatter machine;

  (* Two independent dot-product-style accumulations: lots of adds that
     fight over a single adder but spread nicely over two. *)
  let block =
    Compile.compile
      "s = a + b;\n\
       t = c + d;\n\
       u = e + f;\n\
       v = g + h;\n\
       r = s * t;\n\
       q = u * v;"
  in
  Format.printf "@.block (%d tuples):@.%a@.@." (Block.length block) Block.pp
    block;
  let dag = Dag.of_block block in

  (* The paper's algorithm: every operation pinned to its first candidate
     pipeline (one loader, one adder usable). *)
  let single = Optimal.schedule machine dag in
  Format.printf "single-pipe optimum: %d NOPs (%d Omega calls)@."
    single.Optimal.best.Omega.nops
    single.Optimal.stats.Optimal.omega_calls;

  (* The extension: the search also assigns pipelines.  The adder's
     enqueue time of 3 makes the second adder matter. *)
  let multi, choice = Optimal.schedule_multi machine dag in
  Format.printf "multi-pipe optimum:  %d NOPs (%d Omega calls)@."
    multi.Optimal.best.Omega.nops multi.Optimal.stats.Optimal.omega_calls;

  (* Which unit did each instruction land on? *)
  Format.printf "@.pipeline assignment:@.";
  Array.iteri
    (fun pos c ->
      let tu = Block.tuple_at block pos in
      match c with
      | Some p ->
        Format.printf "  %-18s -> pipe %d (%s)@."
          (Tuple.to_string tu) p (Machine.pipe machine p).Pipe.label
      | None -> Format.printf "  %-18s -> (no pipeline)@." (Tuple.to_string tu))
    choice;

  (* The same block on progressively deeper uniform pipelines: latency
     hurts until there is enough independent work to hide it. *)
  Format.printf "@.uniform-machine sweep (same block):@.";
  List.iter
    (fun latency ->
      let m = Machine.Presets.uniform ~latency ~enqueue:1 in
      let o = Optimal.schedule m (Dag.of_block block) in
      Format.printf "  latency %2d: optimal NOPs = %2d (list seed had %2d)@."
        latency o.Optimal.best.Omega.nops o.Optimal.initial.Omega.nops)
    [ 1; 2; 4; 8 ]
