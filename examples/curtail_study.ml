(* The curtail point lambda: quality vs compile time (§2.3, §5.3).

   The search stops after lambda Omega calls; the paper reports that
   lambda around 1,000 completes the vast majority of blocks, and that
   truncated searches still land very close to optimal.  This example
   sweeps lambda over a population of synthetic blocks and prints the
   completion rate, schedule quality and search cost at each setting.

   Run with:  dune exec examples/curtail_study.exe *)

open Pipesched_machine
open Pipesched_ir
open Pipesched_core
module Generator = Pipesched_synth.Generator
module Rng = Pipesched_prelude.Rng

let machine = Machine.Presets.simulation

let () =
  let rng = Rng.create 2026 in
  let blocks =
    List.init 400 (fun _ ->
        Generator.block rng (Generator.sample_params rng))
  in
  let dags = List.map Dag.of_block blocks in
  Format.printf
    "%d blocks, sizes %d..%d@.@." (List.length blocks)
    (List.fold_left (fun a b -> min a (Block.length b)) max_int blocks)
    (List.fold_left (fun a b -> max a (Block.length b)) 0 blocks);
  Format.printf "%8s %10s %12s %12s %14s@." "lambda" "% optimal"
    "avg NOPs" "excess NOPs" "avg calls";
  (* Reference: generous-lambda run, optimal for every block it completes. *)
  let reference =
    List.map
      (fun dag ->
        (Optimal.schedule
           ~options:{ Optimal.default_options with Optimal.lambda = 2_000_000 }
           machine dag)
          .Optimal.best
          .Omega.nops)
      dags
  in
  List.iter
    (fun lambda ->
      let outcomes =
        List.map
          (fun dag ->
            Optimal.schedule
              ~options:{ Optimal.default_options with Optimal.lambda }
              machine dag)
          dags
      in
      let n = float_of_int (List.length outcomes) in
      let optimal =
        List.length
          (List.filter (fun o -> o.Optimal.stats.Optimal.completed) outcomes)
      in
      let nops =
        List.fold_left
          (fun acc o -> acc + o.Optimal.best.Omega.nops)
          0 outcomes
      in
      let excess =
        List.fold_left2
          (fun acc o ref_nops -> acc + (o.Optimal.best.Omega.nops - ref_nops))
          0 outcomes reference
      in
      let calls =
        List.fold_left
          (fun acc o -> acc + o.Optimal.stats.Optimal.omega_calls)
          0 outcomes
      in
      Format.printf "%8d %10.1f %12.2f %12.3f %14.1f@." lambda
        (100.0 *. float_of_int optimal /. n)
        (float_of_int nops /. n)
        (float_of_int excess /. n)
        (float_of_int calls /. n))
    [ 10; 50; 200; 1_000; 5_000; 50_000 ];
  Format.printf
    "@.(excess NOPs = average NOPs above the generous-lambda reference; \
     the paper's observation is that it vanishes long before every search \
     completes.)@."
