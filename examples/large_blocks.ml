(* Scheduling beyond the single-block search: windowed scheduling of very
   large blocks (§5.3) and threading pipeline state across adjacent blocks
   (footnote 1).

   Run with:  dune exec examples/large_blocks.exe *)

open Pipesched_ir
open Pipesched_machine
open Pipesched_core
module Generator = Pipesched_synth.Generator
module Rng = Pipesched_prelude.Rng

let machine = Machine.Presets.simulation

let () =
  (* --- Part 1: windowed scheduling ---------------------------------- *)
  let rng = Rng.create 7071 in
  (* A very large block, bigger than anything the paper's study drew. *)
  let blk =
    Generator.block rng
      { Generator.statements = 60; variables = 12; constants = 4 }
  in
  let dag = Dag.of_block blk in
  Format.printf "large block: %d instructions@.@." (Block.length blk);
  let lambda = 200_000 in
  let options = { Optimal.default_options with Optimal.lambda } in
  let t0 = Unix.gettimeofday () in
  let full = Optimal.schedule ~options machine dag in
  let t_full = Unix.gettimeofday () -. t0 in
  Format.printf
    "full search:  %d NOPs, %d omega calls, %.3fs%s@."
    full.Optimal.best.Omega.nops full.Optimal.stats.Optimal.omega_calls
    t_full
    (if full.Optimal.stats.Optimal.completed then "" else "  (curtailed)");
  List.iter
    (fun window ->
      let t0 = Unix.gettimeofday () in
      let w = Windowed.schedule ~options ~window machine dag in
      let dt = Unix.gettimeofday () -. t0 in
      Format.printf
        "window = %2d:  %d NOPs, %d omega calls, %.3fs  (%d windows%s)@."
        window w.Windowed.best.Omega.nops w.Windowed.omega_calls dt
        w.Windowed.window_count
        (if w.Windowed.all_windows_completed then "" else ", curtailed"))
    [ 4; 8; 12; 20 ];

  (* --- Part 2: pipeline state across block boundaries ---------------- *)
  Format.printf "@.adjacent blocks (footnote 1):@.";
  let dags =
    List.init 6 (fun _ ->
        Dag.of_block
          (Generator.block rng
             { Generator.statements = 5; variables = 4; constants = 2 }))
  in
  let region = Region.schedule machine dags in
  Format.printf
    "  threaded entry states: %d NOPs total@.  cold-start schedules:   %d \
     NOPs total (boundary stalls included)@."
    region.Region.total_nops region.Region.cold_total_nops;
  List.iteri
    (fun i b ->
      Format.printf "    block %d: %d insns, %d NOPs, multiplier entry %s@."
        i
        (Array.length b.Region.outcome.Optimal.best.Omega.order)
        b.Region.outcome.Optimal.best.Omega.nops
        (let t = b.Region.entry.Omega.pipe_last_use.(1) in
         if t < -1000 then "idle" else string_of_int t))
    region.Region.blocks;

  (* --- Part 3: what the pipelines are doing -------------------------- *)
  let small =
    Generator.block rng
      { Generator.statements = 4; variables = 3; constants = 2 }
  in
  let sdag = Dag.of_block small in
  let o = Optimal.schedule machine sdag in
  Format.printf "@.timeline of an optimally scheduled block:@.%s@."
    (Timeline.render machine sdag o.Optimal.best)
