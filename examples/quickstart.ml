(* Quickstart: schedule one basic block optimally.

   Run with:  dune exec examples/quickstart.exe

   This walks the public API end to end on the paper's running example
   (Figure 3): describe the machine, build a block of tuples, derive its
   dependence DAG, and ask the optimal scheduler for the minimum-NOP
   order. *)

open Pipesched_ir
open Pipesched_machine
open Pipesched_core

let () =
  (* 1. The target machine: the paper's simulation machine (Table 4/5) —
     a loader with latency 2 / enqueue 1 and a multiplier with latency 4 /
     enqueue 2; everything else single-cycle. *)
  let machine = Machine.Presets.simulation in
  Machine.pp_tables Format.std_formatter machine;

  (* 2. A basic block in tuple form: b = 15; a = b * a (Figure 3). *)
  let block =
    Block.of_tuples_exn
      [ Tuple.make ~id:1 Op.Const (Operand.Imm 15) Operand.Null;
        Tuple.make ~id:2 Op.Store (Operand.Var "b") (Operand.Ref 1);
        Tuple.make ~id:3 Op.Load (Operand.Var "a") Operand.Null;
        Tuple.make ~id:4 Op.Mul (Operand.Ref 1) (Operand.Ref 3);
        Tuple.make ~id:5 Op.Store (Operand.Var "a") (Operand.Ref 4) ]
  in
  Format.printf "@.block:@.%a@.@." Block.pp block;

  (* 3. Dependences. *)
  let dag = Dag.of_block block in

  (* 4. How bad is the naive order? *)
  let source =
    Omega.evaluate machine dag
      ~order:(Omega.identity_order (Block.length block))
  in
  Format.printf "source order needs %d NOPs@." source.Omega.nops;

  (* 5. The optimal schedule. *)
  let outcome = Optimal.schedule machine dag in
  let best = outcome.Optimal.best in
  Format.printf "optimal schedule needs %d NOPs (%s, %d Omega calls)@."
    best.Omega.nops
    (if outcome.Optimal.stats.Optimal.completed then "provably optimal"
     else "search curtailed")
    outcome.Optimal.stats.Optimal.omega_calls;

  (* 6. Show it, NOPs included. *)
  let scheduled = Block.permute block best.Omega.order in
  Format.printf "@.scheduled block:@.";
  Array.iteri
    (fun k tu ->
      for _ = 1 to best.Omega.eta.(k) do
        Format.printf "   Nop@."
      done;
      Format.printf "   %a@." Tuple.pp tu)
    (Block.tuples scheduled)
