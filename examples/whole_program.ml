(* Whole programs with control flow (§6 "arbitrary control flow").

   A dot-product-with-threshold kernel: loops, a branch, and enough
   arithmetic per iteration for scheduling to matter.  The program is
   lowered to a CFG, linear chains are merged, every block is scheduled
   optimally, pipeline state is propagated along the edges, and the
   resulting assembly is executed — comparing dynamic cycle counts with
   and without scheduling.

   Run with:  dune exec examples/whole_program.exe *)

open Pipesched_cflow
open Pipesched_machine
open Pipesched_core

let source =
  "dot = 0;\n\
   energy = 0;\n\
   i = 0;\n\
   while (i < n) {\n\
  \  p = a * b;\n\
  \  q = c * d;\n\
  \  dot = dot + p + q;\n\
  \  energy = energy + p * p;\n\
  \  a = a + 1;\n\
  \  d = d - 1;\n\
  \  i = i + 1;\n\
   }\n\
   if (dot > 1000) { clipped = 1; dot = 1000; } else { clipped = 0; }\n\
   out = dot + energy;"

let machine = Machine.Presets.simulation

let () =
  Format.printf "source:@.%s@.@." source;
  let cfg = Lower.compile source in
  Format.printf "lowered CFG (%d nodes, %d instructions):@.%a@."
    (Cfg.length cfg) (Cfg.instruction_count cfg) Cfg.pp cfg;
  let merged = Cfg.merge_chains cfg in
  Format.printf "after chain merging: %d nodes@.@." (Cfg.length merged);

  let run label options =
    let s = Schedule.schedule ~options machine merged in
    match Emit.emit s with
    | Error (node, pos, demand) ->
      Format.printf "%s: register overflow in node %d at %d (demand %d)@."
        label node pos demand
    | Ok text ->
      let env v = if v = "n" then 25 else 3 in
      let mem, ticks = Emit.execute text ~env in
      Format.printf
        "%-18s %5d dynamic cycles, %3d static NOPs, out = %d@." label ticks
        s.Schedule.total_nops
        (List.assoc "out" mem)
  in
  run "source order"
    { Optimal.default_options with
      Optimal.lambda = 1;
      Optimal.seed = Pipesched_sched.List_sched.Source_order };
  run "list schedule" { Optimal.default_options with Optimal.lambda = 1 };
  run "optimal search" Optimal.default_options;

  (* Show the scheduled loop body with its padding. *)
  let s = Schedule.schedule machine merged in
  (match Emit.emit s with
   | Ok text -> Format.printf "@.scheduled assembly:@.%s@." text
   | Error _ -> ());
  Format.printf "loop headers padded conservatively: %s@."
    (String.concat ", "
       (List.map string_of_int s.Schedule.loop_headers))
